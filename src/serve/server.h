// fgrd: the long-lived estimation-serving daemon.
//
// FgrServer answers line-delimited JSON requests (serve/protocol.h) over a
// TCP listen socket. One event thread owns every socket through an
// edge-triggered epoll loop: it accepts, reads, frames lines out of
// per-connection buffers, dispatches complete requests to a fixed worker
// pool through a bounded queue, and writes responses back coalesced.
// Workers never touch sockets; the event thread never computes. Request
// lifecycle for estimate/label:
//
//   resolve .fgrbin path
//     → DatasetCache::Acquire        (mmap residency, LRU byte budget;
//                                     over-budget files fall to streaming)
//     → SummaryCache::GetOrCompute   (M(ℓ) statistics keyed on the file's
//                                     content hash; memory → .fgrsum
//                                     sidecar → PanelSummarizer over the
//                                     mapped view, or the BlockRowReader
//                                     streaming pass for non-resident
//                                     datasets)
//     → EstimateDceFromStatistics    (k-scale restarts, graph-free)
//     → [label only] RunLinBp over the mapped view — or, for non-resident
//       datasets, PropagateLinBPStreaming block-row over the same panel
//       stream — + LabelsFromBeliefs.
//
// Robustness: per-request and idle-connection deadlines run off a slotted
// timer wheel; a connection whose write buffer outgrows its cap is evicted
// as a slow client; once the worker queue passes its high-water mark new
// requests are shed with a structured `overloaded` error; Stop() drains
// queued and in-flight work (bounded by drain_timeout_ms) before closing.
// Every outcome lands in an atomic ServerMetrics struct served by the
// `metrics` verb.
//
// Seeds are the dataset's own label section: summaries are then a pure
// function of (file bytes, path type, ℓ), which is what makes them
// cacheable. Results match the offline CLI bit for bit in serial runs
// because every stage above is the same code path fgr_cli estimate/label
// executes on a loaded Graph.
//
// HandleRequestLine is the transport-free core — tests and benches call it
// directly; the event loop is a framing-and-scheduling shell around it.

#ifndef FGR_SERVE_SERVER_H_
#define FGR_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/dataset_cache.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/summary_cache.h"
#include "serve/timer_wheel.h"
#include "util/stopwatch.h"

namespace fgr {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 7411;  // 0: pick an ephemeral port (read it back via port())
  int worker_threads = 4;
  // Byte budget for mmap'd dataset residency (DatasetCache). Datasets
  // larger than this are never mapped; estimate and label both fall back
  // to the block-row streaming pipeline under streaming_budget_bytes.
  std::int64_t dataset_budget_bytes = std::int64_t{1} << 30;
  // Panel budget handed to BlockRowReader for non-resident datasets.
  std::int64_t streaming_budget_bytes = std::int64_t{64} << 20;
  // A request line longer than this is answered with an error and the
  // connection is closed (malformed or hostile client).
  std::int64_t max_request_bytes = std::int64_t{1} << 20;
  // Persist freshly computed summaries as .fgrsum sidecars.
  bool persist_summaries = true;

  // --- event-loop robustness knobs ---
  // A dispatched request that has not completed within this deadline is
  // answered with a `timeout` error and its connection is closed (the
  // worker's eventual result is discarded).
  std::int64_t request_timeout_ms = 30000;
  // A connection with no traffic and no request in flight for this long
  // is closed.
  std::int64_t idle_timeout_ms = 300000;
  // A connection whose unsent response backlog exceeds this cap is
  // evicted as a slow client.
  std::int64_t max_write_buffer_bytes = std::int64_t{8} << 20;
  // Admission control: once this many requests sit in the worker queue,
  // new arrivals are shed with an `overloaded` error.
  int queue_high_water = 256;
  // Stop() waits this long for queued + in-flight requests to finish and
  // flush before force-closing what remains.
  std::int64_t drain_timeout_ms = 5000;
  // When > 0, shrink SO_SNDBUF on accepted sockets to this many bytes.
  // Production leaves it 0 (kernel default); tests use it to exercise the
  // write-buffer cap without fighting megabytes of kernel buffering.
  int send_buffer_bytes = 0;
};

class FgrServer {
 public:
  explicit FgrServer(ServerOptions options);
  ~FgrServer();

  FgrServer(const FgrServer&) = delete;
  FgrServer& operator=(const FgrServer&) = delete;

  // Binds, listens, and spawns the event + worker threads.
  Status Start();

  // Graceful drain: stops accepting, lets queued and in-flight requests
  // finish and flush (bounded by drain_timeout_ms), then closes
  // everything and joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(); }

  // The bound port (resolves option port 0 to the ephemeral choice).
  int port() const { return port_; }
  const std::string& host() const { return options_.host; }

  // Maps a dataset into residency ahead of traffic. Summaries stay cold
  // (they load from .fgrsum or compute on first use).
  Status Preload(const std::string& path);

  // Parses and dispatches one request line, returning one response line
  // (no trailing newline). Never throws; all failures become error
  // responses. Safe to call concurrently. Per-verb metrics counters are
  // bumped here, so transport-free callers count too.
  std::string HandleRequestLine(const std::string& line);

  // The metrics response body (the same JSON the `metrics` verb returns)
  // without bumping any counter — used by --dump-metrics-on-exit.
  std::string MetricsJson(int version = 0) const;

  const DatasetCache& datasets() const { return datasets_; }
  const SummaryCache& summaries() const { return summaries_; }
  const ServerMetrics& metrics() const { return metrics_; }

 private:
  struct EstimateOutcome;

  // Per-connection state, owned exclusively by the event thread.
  struct Connection;

  // One framed request line travelling to the worker pool and back. The
  // generation ties the eventual completion to the dispatch that created
  // it: a timed-out or closed connection bumps its generation, turning
  // the worker's late result into a discard instead of a misdelivery.
  struct WorkItem {
    std::uint64_t conn_id = 0;
    std::uint64_t generation = 0;
    std::string line;
    // When the event thread enqueued the item; the worker that picks it
    // up records now-enqueued into metrics_.stage_queue_wait.
    std::chrono::steady_clock::time_point enqueued{};
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t generation = 0;
    std::string response;
  };

  // Content hash of a non-resident (streamed) dataset, cached on
  // (mtime, size) so repeat queries skip the full-file re-read — the
  // streamed analogue of the dataset cache's staleness check.
  Result<std::uint64_t> StreamingContentHash(const std::string& path);

  Status RunEstimate(const Request& request,
                     EstimateOutcome* outcome);
  std::string HandleEstimate(const Request& request);
  std::string HandleLabel(const Request& request);
  std::string HandleStats(int version);
  std::string HandleDatasets(int version);
  std::string HandleMetrics(int version);

  // Event-loop internals (event thread only unless noted).
  void EventLoop();
  void WorkerLoop();
  void AcceptNewConnections();
  void HandleReadable(Connection* conn);
  void DispatchPending(Connection* conn);
  void FlushWrites(Connection* conn);  // may destroy *conn
  void QueueResponse(Connection* conn, const std::string& response);
  void CloseConnection(Connection* conn);
  void ProcessCompletions();
  void FireTimers(std::chrono::steady_clock::time_point now);
  void ArmIdleTimer(Connection* conn);
  bool UpdateEpoll(Connection* conn, bool want_write);
  void WakeEventThread();

  ServerOptions options_;
  DatasetCache datasets_;
  SummaryCache summaries_;

  struct StreamedHash {
    std::filesystem::file_time_type mtime;
    std::uintmax_t file_size = 0;
    std::uint64_t hash = 0;
  };
  std::mutex streamed_hash_mutex_;
  std::map<std::string, StreamedHash> streamed_hashes_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};  // finish work, accept nothing new
  std::atomic<bool> stopping_{false};  // tear down now
  std::atomic<bool> drained_{false};   // event thread: nothing left to do
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: workers and Stop() kick the event thread
  int port_ = 0;
  std::thread event_thread_;
  std::vector<std::thread> workers_;

  // Event-thread-only connection table; epoll events carry the id, not
  // the pointer, so a stale event after a close resolves to "not found"
  // instead of a dangling dereference.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 1;
  TimerWheel timers_;

  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_queue_;

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  Stopwatch uptime_;
  ServerMetrics metrics_;
  // Legacy `stats` verb counters (kept distinct: `stats` predates the
  // metrics surface and its fields are pinned by clients).
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> errors_{0};
  std::atomic<std::int64_t> estimates_{0};
  std::atomic<std::int64_t> labels_{0};
  std::atomic<std::int64_t> connections_total_{0};
};

// "a.fgrbin,b.fgrbin" → {"a.fgrbin", "b.fgrbin"} (empty pieces dropped) —
// the --preload flag syntax shared by fgrd and `fgr_cli serve`.
std::vector<std::string> SplitCommaList(const std::string& list);

// Runs a server until SIGINT/SIGTERM: blocks the signals, starts the
// server, preloads `preload` datasets (fatal when one fails), prints
// "<name>: serving on <host>:<port> ..." on stdout (flushed, so scripts
// can scrape an ephemeral port), waits for a signal, drains, stops. When
// `dump_metrics_on_exit` is set, prints the metrics JSON on its own line
// after shutdown. Shared by the fgrd binary and `fgr_cli serve`.
Status RunDaemon(const std::string& name, const ServerOptions& options,
                 const std::vector<std::string>& preload,
                 bool dump_metrics_on_exit = false);

}  // namespace fgr

#endif  // FGR_SERVE_SERVER_H_
