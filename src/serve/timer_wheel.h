// A slotted timer wheel for the serve event loop's request and idle
// deadlines.
//
// Single-threaded by design: only the event thread schedules, collects,
// and cancels. Cancellation is lazy — timers carry the connection id and
// a generation counter, and a fired entry whose generation no longer
// matches the connection's current one is simply stale (the request
// completed, or the connection saw new activity and re-armed). This keeps
// Schedule() to a push_back and avoids any per-timer handle bookkeeping.
//
// Entries land in slot (deadline_tick % num_slots) and keep their
// absolute deadline tick, so deadlines further out than one wheel
// revolution just stay in their slot until their tick actually arrives —
// they cost one comparison per revolution, which is fine at serve scale
// (hundreds of connections, two timers each).

#ifndef FGR_SERVE_TIMER_WHEEL_H_
#define FGR_SERVE_TIMER_WHEEL_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fgr {

class TimerWheel {
 public:
  enum class Kind { kRequest, kIdle };

  struct Entry {
    std::uint64_t conn_id = 0;
    std::uint64_t generation = 0;
    Kind kind = Kind::kRequest;
    std::int64_t deadline_tick = 0;
  };

  using Clock = std::chrono::steady_clock;

  explicit TimerWheel(std::int64_t tick_ms = 5, std::size_t num_slots = 512)
      : tick_ms_(tick_ms > 0 ? tick_ms : 1), slots_(num_slots) {}

  void Start(Clock::time_point now) {
    epoch_ = now;
    current_tick_ = 0;
    size_ = 0;
    earliest_tick_ = 0;
    for (auto& slot : slots_) slot.clear();
  }

  void Schedule(Clock::time_point now, std::int64_t delay_ms,
                std::uint64_t conn_id, std::uint64_t generation, Kind kind) {
    // Round up so a timer never fires before its full delay has elapsed.
    std::int64_t deadline =
        TickFor(now) + (delay_ms + tick_ms_ - 1) / tick_ms_;
    if (deadline <= current_tick_) deadline = current_tick_ + 1;
    Entry entry;
    entry.conn_id = conn_id;
    entry.generation = generation;
    entry.kind = kind;
    entry.deadline_tick = deadline;
    slots_[static_cast<std::size_t>(deadline) % slots_.size()].push_back(
        entry);
    ++size_;
    if (size_ == 1 || deadline < earliest_tick_) earliest_tick_ = deadline;
  }

  // Advances the wheel to `now`, appending every expired entry to
  // `expired` in tick order. Stale entries are the caller's problem —
  // the wheel has no idea which generations are still live.
  void Collect(Clock::time_point now, std::vector<Entry>* expired) {
    const std::int64_t target = TickFor(now);
    if (size_ == 0) {
      current_tick_ = target;
      return;
    }
    while (current_tick_ < target) {
      ++current_tick_;
      auto& slot =
          slots_[static_cast<std::size_t>(current_tick_) % slots_.size()];
      std::size_t kept = 0;
      for (std::size_t i = 0; i < slot.size(); ++i) {
        if (slot[i].deadline_tick <= current_tick_) {
          expired->push_back(slot[i]);
          --size_;
        } else {
          slot[kept++] = slot[i];
        }
      }
      slot.resize(kept);
      if (size_ == 0) {
        current_tick_ = target;
        return;
      }
    }
    // The advance expired every entry with deadline ≤ current_tick_, so a
    // stale cached minimum means the previous earliest just fired: rescan
    // once for the new one. Amortized this keeps Schedule/MsUntilNext O(1)
    // — the scan runs only on wakeups that actually delivered a timer.
    if (earliest_tick_ <= current_tick_) RecomputeEarliest();
  }

  // Milliseconds until the earliest armed deadline (0 when already due),
  // or -1 when no timer is armed. O(1): the earliest deadline tick is
  // maintained incrementally by Schedule/Collect, so thousands of idle
  // connections no longer tax every epoll_wait timeout computation.
  std::int64_t MsUntilNext(Clock::time_point now) const {
    if (size_ == 0) return -1;
    const std::int64_t elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_)
            .count();
    const std::int64_t due_ms = earliest_tick_ * tick_ms_;
    return due_ms > elapsed_ms ? due_ms - elapsed_ms : 0;
  }

  std::size_t size() const { return size_; }
  std::int64_t tick_ms() const { return tick_ms_; }

 private:
  std::int64_t TickFor(Clock::time_point now) const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_)
               .count() /
           tick_ms_;
  }

  void RecomputeEarliest() {
    bool found = false;
    for (const auto& slot : slots_) {
      for (const Entry& entry : slot) {
        if (!found || entry.deadline_tick < earliest_tick_) {
          earliest_tick_ = entry.deadline_tick;
          found = true;
        }
      }
    }
  }

  std::int64_t tick_ms_;
  std::vector<std::vector<Entry>> slots_;
  Clock::time_point epoch_{};
  std::int64_t current_tick_ = 0;
  std::size_t size_ = 0;
  // Minimum deadline_tick over every armed entry; meaningful only when
  // size_ > 0.
  std::int64_t earliest_tick_ = 0;
};

}  // namespace fgr

#endif  // FGR_SERVE_TIMER_WHEEL_H_
