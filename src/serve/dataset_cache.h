// LRU residency for mmap'd .fgrbin datasets, under a byte budget.
//
// The daemon keeps hot datasets mapped (data/mmap_fgrbin.h) so repeated
// queries skip the open/validate cost; the cache bounds how much it pins.
// Entries are handed out as shared_ptr, so eviction never invalidates a
// request in flight — the mapping is unmapped when the last request using
// it finishes. A dataset whose file alone exceeds the budget is refused
// with FailedPrecondition; the server then answers estimate queries for it
// through the streaming summarizer instead of mapping it.
//
// Staleness: every Acquire hit re-stats the file; a changed size, mtime,
// or inode/device pair forces a reopen, which re-hashes the bytes — that
// new content hash is what flows into the summary cache and invalidates
// stale statistics. The inode/device check catches mtime-preserving,
// same-size rewrites (`rsync -t`, `cp -p`, tar extracts, atomic
// temp+rename replacements), which always land on a fresh inode.

#ifndef FGR_SERVE_DATASET_CACHE_H_
#define FGR_SERVE_DATASET_CACHE_H_

#include <cstdint>
#include <filesystem>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/mmap_fgrbin.h"
#include "serve/keyed_state.h"
#include "util/status.h"

namespace fgr {

class DatasetCache {
 public:
  explicit DatasetCache(std::int64_t byte_budget)
      : byte_budget_(byte_budget) {}

  std::int64_t byte_budget() const { return byte_budget_; }

  // Returns the resident dataset for `path` (canonicalized), opening and
  // validating it on a miss and evicting least-recently-used entries until
  // the cache fits its budget again. FailedPrecondition when the file by
  // itself exceeds the budget — the caller falls back to streaming.
  Result<std::shared_ptr<const MappedFgrBin>> Acquire(
      const std::string& path);

  struct Counters {
    std::int64_t hits = 0;
    std::int64_t misses = 0;       // includes stale reopens
    std::int64_t evictions = 0;
    std::int64_t stale_reopens = 0;
  };
  Counters counters() const;

  std::int64_t resident_bytes() const;
  std::int64_t entries() const;

  // Resident dataset paths, most recently used first.
  std::vector<std::string> ResidentPaths() const;

 private:
  struct Entry {
    std::string path;  // canonical
    std::shared_ptr<const MappedFgrBin> mapped;
    std::filesystem::file_time_type mtime;
    std::uintmax_t file_size = 0;
    std::uint64_t inode = 0;   // st_ino at open
    std::uint64_t device = 0;  // st_dev at open
  };

  // Drops LRU entries until the budget holds (never drops the MRU entry).
  void EvictToBudgetLocked();

  std::int64_t byte_budget_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<std::string, std::list<Entry>::iterator> index_;
  // Serializes cold opens per dataset (keyed_state.h), so concurrent
  // misses on the same path coalesce — the second waiter finds the
  // first's entry — while opens of different datasets, and every hit,
  // proceed without touching each other. mutex_ above is only ever held
  // for map/LRU bookkeeping, never across MappedFgrBin::Open.
  KeyedStateMap<std::mutex> open_states_;
  std::int64_t resident_bytes_ = 0;
  Counters counters_;
};

}  // namespace fgr

#endif  // FGR_SERVE_DATASET_CACHE_H_
