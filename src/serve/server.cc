#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>

#include "core/dce.h"
#include "data/streaming_estimation.h"
#include "prop/linbp.h"

namespace fgr {
namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

std::string CanonicalPath(const std::string& path) {
  std::error_code ec;
  std::filesystem::path canonical =
      std::filesystem::weakly_canonical(std::filesystem::path(path), ec);
  return ec ? path : canonical.string();
}

// Sends the whole buffer; MSG_NOSIGNAL turns a dead peer into an error
// return instead of SIGPIPE.
bool SendAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

DatasetSummary SummaryFromStatistics(GraphStatistics stats, PathType path_type,
                                     int max_length, std::int64_t num_nodes,
                                     std::int32_t num_classes) {
  DatasetSummary summary;
  summary.path_type = path_type;
  summary.max_length = max_length;
  summary.num_nodes = num_nodes;
  summary.num_classes = num_classes;
  summary.m_raw = std::move(stats.m_raw);
  summary.seconds = stats.seconds;
  return summary;
}

void AppendMatrix(JsonWriter* writer, const DenseMatrix& m) {
  writer->BeginArray();
  for (DenseMatrix::Index i = 0; i < m.rows(); ++i) {
    writer->BeginArray();
    for (DenseMatrix::Index j = 0; j < m.cols(); ++j) {
      writer->Value(m(i, j));
    }
    writer->EndArray();
  }
  writer->EndArray();
}

}  // namespace

struct FgrServer::EstimateOutcome {
  std::shared_ptr<const MappedFgrBin> mapped;  // null when streamed
  std::string canonical_path;
  // The seed labeling: a borrowed view into the mapping (which `mapped`
  // pins) on the resident path — the warm hot path never copies the
  // n-sized labels — or owned storage on the streamed path.
  Labeling streamed_seeds;
  const Labeling* seeds = nullptr;
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
  SummarySource source = SummarySource::kComputed;
  EstimationResult estimate;
};

FgrServer::FgrServer(ServerOptions options)
    : options_(std::move(options)),
      datasets_(options_.dataset_budget_bytes),
      summaries_(options_.persist_summaries) {}

FgrServer::~FgrServer() { Stop(); }

Result<std::uint64_t> FgrServer::StreamingContentHash(
    const std::string& path) {
  std::error_code ec;
  const std::filesystem::file_time_type mtime =
      std::filesystem::last_write_time(path, ec);
  if (ec) return Status::NotFound("cannot stat " + path);
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::NotFound("cannot stat " + path);
  {
    std::lock_guard<std::mutex> lock(streamed_hash_mutex_);
    auto found = streamed_hashes_.find(path);
    if (found != streamed_hashes_.end() &&
        found->second.mtime == mtime &&
        found->second.file_size == file_size) {
      return found->second.hash;
    }
  }
  Result<std::uint64_t> hashed = HashFileContents(path);
  if (!hashed.ok()) return hashed.status();
  std::lock_guard<std::mutex> lock(streamed_hash_mutex_);
  // Cheap bound for rotating dataset populations; a dropped entry only
  // costs one re-hash.
  if (streamed_hashes_.size() > 1024) streamed_hashes_.clear();
  streamed_hashes_[path] = {mtime, file_size, hashed.value()};
  return hashed.value();
}

Status FgrServer::Preload(const std::string& path) {
  Result<std::shared_ptr<const MappedFgrBin>> acquired =
      datasets_.Acquire(path);
  if (!acquired.ok()) return acquired.status();
  return Status::Ok();
}

Status FgrServer::RunEstimate(const Request& request, bool need_graph,
                              EstimateOutcome* outcome) {
  const std::string& dataset = request.dataset;
  if (!EndsWith(dataset, kFgrBinExtension)) {
    return Status::InvalidArgument(
        dataset + ": fgrd serves .fgrbin caches; convert first: "
        "fgr_cli datasets convert <name|path> <out.fgrbin>");
  }
  const PathType path_type = request.options.path_type;

  std::uint64_t content_hash = 0;
  SummaryCache::ComputeFn compute;

  // Acquire canonicalizes internally; the resident branch reads the
  // canonical key back from the mapping rather than resolving the path a
  // second time on the warm hot path.
  Result<std::shared_ptr<const MappedFgrBin>> acquired =
      datasets_.Acquire(dataset);
  if (acquired.ok()) {
    const std::shared_ptr<const MappedFgrBin> mapped = acquired.value();
    outcome->mapped = mapped;
    outcome->canonical_path = mapped->path();
    outcome->seeds = &mapped->labels();
    outcome->num_nodes = mapped->num_nodes();
    outcome->num_edges = mapped->num_edges();
    content_hash = mapped->content_hash();
    // Resident: one whole-matrix panel per pass over the mapped CSR — the
    // exact AbsorbPanel sequence ComputeGraphStatistics runs in-core, so
    // the statistics match the offline CLI bit for bit. The lambda
    // captures only the mapping (which owns the labels); the summarizer
    // copies them once, and only on the cold path that runs it.
    compute = [mapped, path_type](int max_length) -> Result<DatasetSummary> {
      PanelSummarizer summarizer(mapped->labels(), max_length, path_type);
      const CsrPanelView whole = mapped->View();
      for (int length = 1; length <= max_length; ++length) {
        summarizer.BeginPass(length);
        summarizer.AbsorbPanel(whole);
        summarizer.EndPass();
      }
      return SummaryFromStatistics(
          summarizer.Finish(NormalizationVariant::kRowStochastic), path_type,
          max_length, mapped->num_nodes(),
          static_cast<std::int32_t>(mapped->labels().num_classes()));
    };
  } else if (acquired.status().code() == StatusCode::kFailedPrecondition) {
    // Too large for residency: estimates stream, propagation is refused
    // (LinBP needs ℓ·iterations random access to W's full width).
    outcome->canonical_path = CanonicalPath(dataset);
    const std::string& path = outcome->canonical_path;
    if (need_graph) {
      return Status::FailedPrecondition(
          path + ": dataset exceeds the residency budget; 'label' needs a "
          "resident graph — raise --budget or use offline fgr_cli label");
    }
    // The (mtime, size) the content hash is valid for; the compute
    // callback re-stats after streaming so a file rewritten mid-pass can
    // never be cached (or persisted) under the old hash.
    std::error_code stat_ec;
    const std::filesystem::file_time_type mtime_before =
        std::filesystem::last_write_time(path, stat_ec);
    if (stat_ec) return Status::NotFound("cannot stat " + path);
    const std::uintmax_t size_before =
        std::filesystem::file_size(path, stat_ec);
    if (stat_ec) return Status::NotFound("cannot stat " + path);

    Result<std::uint64_t> hashed = StreamingContentHash(path);
    if (!hashed.ok()) return hashed.status();
    content_hash = hashed.value();
    Result<Labeling> seeds = ReadFgrBinLabels(path);
    if (!seeds.ok()) return seeds.status();
    outcome->streamed_seeds = std::move(seeds).value();
    outcome->seeds = &outcome->streamed_seeds;
    Result<FgrBinInfo> info = InspectFgrBin(path);
    if (!info.ok()) return info.status();
    outcome->num_nodes = info.value().num_nodes;
    outcome->num_edges = info.value().nnz / 2;
    // The lambda runs synchronously inside GetOrCompute below (outcome
    // outlives it), so it borrows the seeds instead of copying the
    // n-sized labeling — warm hits never pay for a labeling the callback
    // would not even run on.
    const Labeling* streaming_seeds = &outcome->streamed_seeds;
    const std::int64_t budget = options_.streaming_budget_bytes;
    compute = [path, streaming_seeds, path_type, budget, mtime_before,
               size_before](int max_length) -> Result<DatasetSummary> {
      BlockRowReaderOptions reader_options;
      reader_options.memory_budget_bytes = budget;
      Result<GraphStatistics> stats = ComputeGraphStatisticsStreaming(
          path, *streaming_seeds, max_length, path_type,
          NormalizationVariant::kRowStochastic, reader_options);
      if (!stats.ok()) return stats.status();
      // Fail before anything is cached when the bytes changed under the
      // pass: the hash above would no longer describe these statistics.
      std::error_code ec;
      if (std::filesystem::last_write_time(path, ec) != mtime_before ||
          ec || std::filesystem::file_size(path, ec) != size_before || ec) {
        return Status::Internal(
            path + ": dataset changed while being summarized; retry");
      }
      return SummaryFromStatistics(
          std::move(stats).value(), path_type, max_length,
          streaming_seeds->num_nodes(),
          static_cast<std::int32_t>(streaming_seeds->num_classes()));
    };
  } else {
    return acquired.status();
  }

  const std::string& path = outcome->canonical_path;
  if (outcome->seeds->NumLabeled() == 0) {
    return Status::FailedPrecondition(
        path + ": cache has no label section to seed from; convert with "
        "--labels <seeds>");
  }
  if (outcome->seeds->num_classes() < 2) {
    return Status::FailedPrecondition(
        path + ": cache labels have fewer than 2 classes");
  }

  Result<std::shared_ptr<const DatasetSummary>> summary =
      summaries_.GetOrCompute(path, content_hash, path_type,
                              request.options.max_path_length, compute,
                              &outcome->source);
  if (!summary.ok()) return summary.status();

  GraphStatistics stats = StatisticsFromSummary(
      *summary.value(), request.options.max_path_length,
      request.options.variant);
  if (outcome->source == SummarySource::kComputed) {
    // Report the real graph-pass cost on the query that paid it; cache
    // hits report 0, which is the point.
    stats.seconds = summary.value()->seconds;
  }
  outcome->estimate = EstimateDceFromStatistics(
      stats, outcome->seeds->num_classes(), request.options);
  return Status::Ok();
}

std::string FgrServer::HandleEstimate(const Request& request) {
  EstimateOutcome outcome;
  Status status = RunEstimate(request, /*need_graph=*/false, &outcome);
  if (!status.ok()) {
    ++errors_;
    return ErrorResponseLine(status);
  }
  ++estimates_;
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok").Value(true);
  writer.Key("op").Value("estimate");
  writer.Key("dataset").Value(request.dataset);
  writer.Key("resident").Value(outcome.mapped != nullptr);
  writer.Key("summary_source").Value(SummarySourceName(outcome.source));
  writer.Key("n").Value(outcome.num_nodes);
  writer.Key("m").Value(outcome.num_edges);
  writer.Key("k").Value(
      static_cast<std::int64_t>(outcome.seeds->num_classes()));
  writer.Key("labeled").Value(outcome.seeds->NumLabeled());
  writer.Key("energy").Value(outcome.estimate.energy);
  writer.Key("restarts_used").Value(outcome.estimate.restarts_used);
  writer.Key("optimizer_iterations")
      .Value(outcome.estimate.optimizer_iterations);
  writer.Key("seconds_summarization")
      .Value(outcome.estimate.seconds_summarization);
  writer.Key("seconds_optimization")
      .Value(outcome.estimate.seconds_optimization);
  writer.Key("h");
  AppendMatrix(&writer, outcome.estimate.h);
  writer.EndObject();
  return writer.Take();
}

std::string FgrServer::HandleLabel(const Request& request) {
  EstimateOutcome outcome;
  Status status = RunEstimate(request, /*need_graph=*/true, &outcome);
  if (!status.ok()) {
    ++errors_;
    return ErrorResponseLine(status);
  }
  // Propagate straight over the mapped adjacency — the view overload runs
  // the identical kernels RunLinBp(graph, ...) runs in-core.
  const LinBpResult prop =
      RunLinBp(outcome.mapped->View(), outcome.mapped->degrees(),
               *outcome.seeds, outcome.estimate.h);
  const Labeling predicted =
      LabelsFromBeliefs(prop.beliefs, *outcome.seeds);
  ++labels_;
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok").Value(true);
  writer.Key("op").Value("label");
  writer.Key("dataset").Value(request.dataset);
  writer.Key("resident").Value(true);
  writer.Key("summary_source").Value(SummarySourceName(outcome.source));
  writer.Key("n").Value(outcome.num_nodes);
  writer.Key("m").Value(outcome.num_edges);
  writer.Key("k").Value(
      static_cast<std::int64_t>(outcome.seeds->num_classes()));
  writer.Key("labeled").Value(outcome.seeds->NumLabeled());
  writer.Key("energy").Value(outcome.estimate.energy);
  writer.Key("linbp_iterations").Value(prop.iterations_run);
  writer.Key("h");
  AppendMatrix(&writer, outcome.estimate.h);
  writer.Key("labels");
  writer.BeginArray();
  for (NodeId i = 0; i < predicted.num_nodes(); ++i) {
    writer.Value(static_cast<std::int64_t>(predicted.label(i)));
  }
  writer.EndArray();
  writer.EndObject();
  return writer.Take();
}

std::string FgrServer::HandleStats() {
  const SummaryCache::Counters summary = summaries_.counters();
  const DatasetCache::Counters data = datasets_.counters();
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok").Value(true);
  writer.Key("op").Value("stats");
  writer.Key("uptime_seconds").Value(uptime_.Seconds());
  writer.Key("requests").Value(requests_.load());
  writer.Key("errors").Value(errors_.load());
  writer.Key("estimates").Value(estimates_.load());
  writer.Key("labels").Value(labels_.load());
  writer.Key("connections").Value(connections_.load());
  writer.Key("workers").Value(options_.worker_threads);
  writer.Key("summary");
  writer.BeginObject();
  writer.Key("memory_hits").Value(summary.memory_hits);
  writer.Key("disk_hits").Value(summary.disk_hits);
  writer.Key("computed").Value(summary.computed);
  writer.Key("invalidations").Value(summary.invalidations);
  writer.EndObject();
  writer.Key("datasets");
  writer.BeginObject();
  writer.Key("hits").Value(data.hits);
  writer.Key("misses").Value(data.misses);
  writer.Key("evictions").Value(data.evictions);
  writer.Key("stale_reopens").Value(data.stale_reopens);
  writer.Key("resident").Value(datasets_.entries());
  writer.Key("resident_bytes").Value(datasets_.resident_bytes());
  writer.Key("budget_bytes").Value(datasets_.byte_budget());
  writer.EndObject();
  writer.EndObject();
  return writer.Take();
}

std::string FgrServer::HandleDatasets() {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok").Value(true);
  writer.Key("op").Value("datasets");
  writer.Key("resident");
  writer.BeginArray();
  for (const std::string& path : datasets_.ResidentPaths()) {
    writer.Value(path);
  }
  writer.EndArray();
  writer.Key("resident_bytes").Value(datasets_.resident_bytes());
  writer.Key("budget_bytes").Value(datasets_.byte_budget());
  writer.EndObject();
  return writer.Take();
}

std::string FgrServer::HandleRequestLine(const std::string& line) {
  ++requests_;
  if (static_cast<std::int64_t>(line.size()) > options_.max_request_bytes) {
    ++errors_;
    return ErrorResponseLine(Status::InvalidArgument(
        "request of " + std::to_string(line.size()) +
        " bytes exceeds the " + std::to_string(options_.max_request_bytes) +
        "-byte limit"));
  }
  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    ++errors_;
    return ErrorResponseLine(parsed.status());
  }
  switch (parsed.value().op) {
    case RequestOp::kEstimate:
      return HandleEstimate(parsed.value());
    case RequestOp::kLabel:
      return HandleLabel(parsed.value());
    case RequestOp::kStats:
      return HandleStats();
    case RequestOp::kDatasets:
      return HandleDatasets();
  }
  ++errors_;
  return ErrorResponseLine(Status::Internal("unreachable op"));
}

Status FgrServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  stopping_.store(false);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host '" + options_.host +
                                   "' (use a dotted IPv4 address)");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int error = errno;
    ::close(fd);
    return Status::Internal("bind to " + options_.host + ":" +
                            std::to_string(options_.port) + " failed: " +
                            std::strerror(error));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  port_ = static_cast<int>(ntohs(address.sin_port));
  listen_fd_.store(fd);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const int workers = options_.worker_threads > 0 ? options_.worker_threads
                                                  : 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void FgrServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);

  // Retire the listen fd (shutdown wakes a blocked accept on Linux) but
  // close it only after the accept thread joins — closing first would let
  // the kernel recycle the fd number into a racing accept() call.
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd >= 0) ::close(listen_fd);

  {
    // Empty critical section: a worker that evaluated its wait predicate
    // before stopping_ was set cannot block again until we release the
    // queue mutex, so the notify below can never be lost.
    std::lock_guard<std::mutex> lock(queue_mutex_);
  }
  queue_cv_.notify_all();
  {
    // Wake workers blocked in recv() on live connections.
    std::lock_guard<std::mutex> lock(active_mutex_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Close connections that were queued but never picked up.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : pending_connections_) ::close(fd);
  pending_connections_.clear();
}

void FgrServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      // Transient resource pressure (fd exhaustion, a connection reset in
      // the backlog) must not permanently stop a long-lived daemon from
      // accepting; back off briefly and keep going. Anything else means
      // the listen socket itself is gone.
      if (errno == EMFILE || errno == ENFILE || errno == ECONNABORTED ||
          errno == EAGAIN || errno == ENOBUFS || errno == ENOMEM ||
          errno == EPROTO) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;
    }
    ++connections_;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_connections_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void FgrServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !pending_connections_.empty();
      });
      if (pending_connections_.empty()) return;  // stopping
      fd = pending_connections_.front();
      pending_connections_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock(active_mutex_);
      active_fds_.insert(fd);
    }
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(active_mutex_);
      active_fds_.erase(fd);
    }
    ::close(fd);
  }
}

void FgrServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load()) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return;  // peer closed or error
    }
    buffer.append(chunk, static_cast<std::size_t>(got));

    std::size_t start = 0;
    std::size_t newline;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      std::string line = buffer.substr(start, newline - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = newline + 1;
      const std::string response = HandleRequestLine(line) + "\n";
      if (!SendAll(fd, response.data(), response.size())) return;
    }
    buffer.erase(0, start);

    // A partial line beyond the limit can never become a valid request;
    // answer once and drop the connection instead of buffering forever.
    if (static_cast<std::int64_t>(buffer.size()) >
        options_.max_request_bytes) {
      ++requests_;
      ++errors_;
      const std::string response =
          ErrorResponseLine(Status::InvalidArgument(
              "request exceeds the " +
              std::to_string(options_.max_request_bytes) +
              "-byte limit")) +
          "\n";
      SendAll(fd, response.data(), response.size());
      return;
    }
  }
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) pieces.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return pieces;
}

Status RunDaemon(const std::string& name, const ServerOptions& options,
                 const std::vector<std::string>& preload) {
  // Block the shutdown signals before any thread spawns so every thread
  // inherits the mask and sigwait below is the one consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  FgrServer server(options);
  FGR_RETURN_IF_ERROR(server.Start());
  for (const std::string& path : preload) {
    Status status = server.Preload(path);
    if (!status.ok()) {
      server.Stop();
      return Status(status.code(),
                    "preload of " + path + " failed: " + status.message());
    }
  }
  std::printf(
      "%s: serving on %s:%d (workers=%d, budget=%lld MB, preloaded=%zu)\n",
      name.c_str(), server.host().c_str(), server.port(),
      options.worker_threads,
      static_cast<long long>(options.dataset_budget_bytes >> 20),
      preload.size());
  std::fflush(stdout);  // scripts scrape the port from this line

  int received = 0;
  sigwait(&signals, &received);
  std::printf("%s: received %s, shutting down\n", name.c_str(),
              received == SIGINT ? "SIGINT" : "SIGTERM");
  std::fflush(stdout);
  server.Stop();
  return Status::Ok();
}

}  // namespace fgr
