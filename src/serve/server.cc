#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>

#include "core/dce.h"
#include "data/streaming_estimation.h"
#include "matrix/kernels/kernels.h"
#include "obs/counters.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "prop/linbp.h"
#include "prop/linbp_streaming.h"

namespace fgr {
namespace {

using SteadyClock = std::chrono::steady_clock;

// epoll user-data tags for the two non-connection fds. Connection ids
// count up from 1, so these can never collide.
constexpr std::uint64_t kListenTag = ~std::uint64_t{0};
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0} - 1;

constexpr auto kRelaxed = std::memory_order_relaxed;

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

std::string CanonicalPath(const std::string& path) {
  std::error_code ec;
  std::filesystem::path canonical =
      std::filesystem::weakly_canonical(std::filesystem::path(path), ec);
  return ec ? path : canonical.string();
}

DatasetSummary SummaryFromStatistics(GraphStatistics stats, PathType path_type,
                                     int max_length, std::int64_t num_nodes,
                                     std::int32_t num_classes) {
  DatasetSummary summary;
  summary.path_type = path_type;
  summary.max_length = max_length;
  summary.num_nodes = num_nodes;
  summary.num_classes = num_classes;
  summary.m_raw = std::move(stats.m_raw);
  summary.seconds = stats.seconds;
  return summary;
}

void AppendMatrix(JsonWriter* writer, const DenseMatrix& m) {
  writer->BeginArray();
  for (DenseMatrix::Index i = 0; i < m.rows(); ++i) {
    writer->BeginArray();
    for (DenseMatrix::Index j = 0; j < m.cols(); ++j) {
      writer->Value(m(i, j));
    }
    writer->EndArray();
  }
  writer->EndArray();
}

}  // namespace

// Per-connection state. Exclusively owned and mutated by the event
// thread; workers only ever see the (conn_id, generation) pair.
struct FgrServer::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  std::string read_buffer;   // unframed bytes
  std::string write_buffer;  // unsent response bytes
  std::size_t write_offset = 0;
  std::deque<std::string> pending_lines;  // framed, not yet dispatched
  bool in_flight = false;         // one request at a time per connection
  bool want_write = false;        // EPOLLOUT armed
  bool close_after_flush = false;
  bool peer_closed = false;       // read side saw EOF
  bool overflowed = false;        // partial line exceeded the size limit
  // Generations make timer and completion delivery exact under reuse:
  // a fired timer or a finished worker item whose generation no longer
  // matches is stale and gets dropped.
  std::uint64_t request_generation = 0;
  std::uint64_t idle_generation = 0;
  SteadyClock::time_point request_start{};
};

struct FgrServer::EstimateOutcome {
  std::shared_ptr<const MappedFgrBin> mapped;  // null when streamed
  std::string canonical_path;
  // The seed labeling: a borrowed view into the mapping (which `mapped`
  // pins) on the resident path — the warm hot path never copies the
  // n-sized labels — or owned storage on the streamed path.
  Labeling streamed_seeds;
  const Labeling* seeds = nullptr;
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
  SummarySource source = SummarySource::kComputed;
  EstimationResult estimate;
  // Per-request stage breakdown, echoed as the "stages" object in
  // versioned estimate/label responses.
  double seconds_acquire = 0.0;    // dataset resolve + seed load
  double seconds_summarize = 0.0;  // SummaryCache::GetOrCompute
  double seconds_optimize = 0.0;   // EstimateDceFromStatistics
  double seconds_propagate = 0.0;  // label only: LinBP
};

FgrServer::FgrServer(ServerOptions options)
    : options_(std::move(options)),
      datasets_(options_.dataset_budget_bytes),
      summaries_(options_.persist_summaries) {}

FgrServer::~FgrServer() { Stop(); }

Result<std::uint64_t> FgrServer::StreamingContentHash(
    const std::string& path) {
  std::error_code ec;
  const std::filesystem::file_time_type mtime =
      std::filesystem::last_write_time(path, ec);
  if (ec) return Status::NotFound("cannot stat " + path);
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::NotFound("cannot stat " + path);
  {
    std::lock_guard<std::mutex> lock(streamed_hash_mutex_);
    auto found = streamed_hashes_.find(path);
    if (found != streamed_hashes_.end() &&
        found->second.mtime == mtime &&
        found->second.file_size == file_size) {
      return found->second.hash;
    }
  }
  Result<std::uint64_t> hashed = HashFileContents(path);
  if (!hashed.ok()) return hashed.status();
  std::lock_guard<std::mutex> lock(streamed_hash_mutex_);
  // Cheap bound for rotating dataset populations; a dropped entry only
  // costs one re-hash.
  if (streamed_hashes_.size() > 1024) streamed_hashes_.clear();
  streamed_hashes_[path] = {mtime, file_size, hashed.value()};
  return hashed.value();
}

Status FgrServer::Preload(const std::string& path) {
  Result<std::shared_ptr<const MappedFgrBin>> acquired =
      datasets_.Acquire(path);
  if (!acquired.ok()) return acquired.status();
  return Status::Ok();
}

Status FgrServer::RunEstimate(const Request& request,
                              EstimateOutcome* outcome) {
  FGR_TRACE_SPAN("serve/run_estimate");
  Stopwatch stage_timer;
  const std::string& dataset = request.dataset;
  if (!EndsWith(dataset, kFgrBinExtension)) {
    return Status::InvalidArgument(
        dataset + ": fgrd serves .fgrbin caches; convert first: "
        "fgr_cli datasets convert <name|path> <out.fgrbin>");
  }
  const PathType path_type = request.options.path_type;

  std::uint64_t content_hash = 0;
  SummaryCache::ComputeFn compute;

  // Acquire canonicalizes internally; the resident branch reads the
  // canonical key back from the mapping rather than resolving the path a
  // second time on the warm hot path.
  Result<std::shared_ptr<const MappedFgrBin>> acquired =
      datasets_.Acquire(dataset);
  if (acquired.ok()) {
    const std::shared_ptr<const MappedFgrBin> mapped = acquired.value();
    outcome->mapped = mapped;
    outcome->canonical_path = mapped->path();
    outcome->seeds = &mapped->labels();
    outcome->num_nodes = mapped->num_nodes();
    outcome->num_edges = mapped->num_edges();
    content_hash = mapped->content_hash();
    // Resident: one whole-matrix panel per pass over the mapped CSR — the
    // exact AbsorbPanel sequence ComputeGraphStatistics runs in-core, so
    // the statistics match the offline CLI bit for bit. The lambda
    // captures only the mapping (which owns the labels); the summarizer
    // copies them once, and only on the cold path that runs it.
    compute = [mapped, path_type](int max_length) -> Result<DatasetSummary> {
      PanelSummarizer summarizer(mapped->labels(), max_length, path_type);
      const CsrPanelView whole = mapped->View();
      for (int length = 1; length <= max_length; ++length) {
        FGR_TRACE_SPAN("summarize/pass", length);
        summarizer.BeginPass(length);
        summarizer.AbsorbPanel(whole);
        summarizer.EndPass();
      }
      return SummaryFromStatistics(
          summarizer.Finish(NormalizationVariant::kRowStochastic), path_type,
          max_length, mapped->num_nodes(),
          static_cast<std::int32_t>(mapped->labels().num_classes()));
    };
  } else if (acquired.status().code() == StatusCode::kFailedPrecondition) {
    // Too large for residency: estimates stream, and label requests
    // propagate block-row over the same panel stream (HandleLabel routes
    // non-resident outcomes through PropagateLinBPStreaming).
    outcome->canonical_path = CanonicalPath(dataset);
    const std::string& path = outcome->canonical_path;
    // The (mtime, size) the content hash is valid for; the compute
    // callback re-stats after streaming so a file rewritten mid-pass can
    // never be cached (or persisted) under the old hash.
    std::error_code stat_ec;
    const std::filesystem::file_time_type mtime_before =
        std::filesystem::last_write_time(path, stat_ec);
    if (stat_ec) return Status::NotFound("cannot stat " + path);
    const std::uintmax_t size_before =
        std::filesystem::file_size(path, stat_ec);
    if (stat_ec) return Status::NotFound("cannot stat " + path);

    Result<std::uint64_t> hashed = StreamingContentHash(path);
    if (!hashed.ok()) return hashed.status();
    content_hash = hashed.value();
    Result<Labeling> seeds = ReadFgrBinLabels(path);
    if (!seeds.ok()) return seeds.status();
    outcome->streamed_seeds = std::move(seeds).value();
    outcome->seeds = &outcome->streamed_seeds;
    Result<FgrBinInfo> info = InspectFgrBin(path);
    if (!info.ok()) return info.status();
    outcome->num_nodes = info.value().num_nodes;
    outcome->num_edges = info.value().nnz / 2;
    // The lambda runs synchronously inside GetOrCompute below (outcome
    // outlives it), so it borrows the seeds instead of copying the
    // n-sized labeling — warm hits never pay for a labeling the callback
    // would not even run on.
    const Labeling* streaming_seeds = &outcome->streamed_seeds;
    const std::int64_t budget = options_.streaming_budget_bytes;
    compute = [path, streaming_seeds, path_type, budget, mtime_before,
               size_before](int max_length) -> Result<DatasetSummary> {
      BlockRowReaderOptions reader_options;
      reader_options.memory_budget_bytes = budget;
      Result<GraphStatistics> stats = ComputeGraphStatisticsStreaming(
          path, *streaming_seeds, max_length, path_type,
          NormalizationVariant::kRowStochastic, reader_options);
      if (!stats.ok()) return stats.status();
      // Fail before anything is cached when the bytes changed under the
      // pass: the hash above would no longer describe these statistics.
      std::error_code ec;
      if (std::filesystem::last_write_time(path, ec) != mtime_before ||
          ec || std::filesystem::file_size(path, ec) != size_before || ec) {
        return Status::Internal(
            path + ": dataset changed while being summarized; retry");
      }
      return SummaryFromStatistics(
          std::move(stats).value(), path_type, max_length,
          streaming_seeds->num_nodes(),
          static_cast<std::int32_t>(streaming_seeds->num_classes()));
    };
  } else {
    return acquired.status();
  }

  const std::string& path = outcome->canonical_path;
  if (outcome->seeds->NumLabeled() == 0) {
    return Status::FailedPrecondition(
        path + ": cache has no label section to seed from; convert with "
        "--labels <seeds>");
  }
  if (outcome->seeds->num_classes() < 2) {
    return Status::FailedPrecondition(
        path + ": cache labels have fewer than 2 classes");
  }
  outcome->seconds_acquire = stage_timer.Seconds();

  stage_timer.Restart();
  Result<std::shared_ptr<const DatasetSummary>> summary = [&] {
    FGR_TRACE_SPAN("serve/summarize");
    return summaries_.GetOrCompute(path, content_hash, path_type,
                                   request.options.max_path_length, compute,
                                   &outcome->source);
  }();
  if (!summary.ok()) return summary.status();
  outcome->seconds_summarize = stage_timer.Seconds();
  stage_timer.Restart();

  GraphStatistics stats = StatisticsFromSummary(
      *summary.value(), request.options.max_path_length,
      request.options.variant);
  if (outcome->source == SummarySource::kComputed) {
    // Report the real graph-pass cost on the query that paid it; cache
    // hits report 0, which is the point.
    stats.seconds = summary.value()->seconds;
  }
  {
    FGR_TRACE_SPAN("serve/optimize");
    outcome->estimate = EstimateDceFromStatistics(
        stats, outcome->seeds->num_classes(), request.options);
  }
  outcome->seconds_optimize = stage_timer.Seconds();
  return Status::Ok();
}

std::string FgrServer::HandleEstimate(const Request& request) {
  EstimateOutcome outcome;
  Status status = RunEstimate(request, &outcome);
  if (!status.ok()) {
    ++errors_;
    metrics_.requests_errors.fetch_add(1, kRelaxed);
    return ErrorResponseLine(status, request.version);
  }
  ++estimates_;
  JsonWriter writer;
  writer.BeginObject();
  if (request.version >= 1) writer.Key("v").Value(request.version);
  writer.Key("ok").Value(true);
  writer.Key("op").Value("estimate");
  writer.Key("dataset").Value(request.dataset);
  writer.Key("resident").Value(outcome.mapped != nullptr);
  writer.Key("summary_source").Value(SummarySourceName(outcome.source));
  writer.Key("n").Value(outcome.num_nodes);
  writer.Key("m").Value(outcome.num_edges);
  writer.Key("k").Value(
      static_cast<std::int64_t>(outcome.seeds->num_classes()));
  writer.Key("labeled").Value(outcome.seeds->NumLabeled());
  writer.Key("energy").Value(outcome.estimate.energy);
  writer.Key("restarts_used").Value(outcome.estimate.restarts_used);
  writer.Key("optimizer_iterations")
      .Value(outcome.estimate.optimizer_iterations);
  writer.Key("seconds_summarization")
      .Value(outcome.estimate.seconds_summarization);
  writer.Key("seconds_optimization")
      .Value(outcome.estimate.seconds_optimization);
  if (request.version >= 1) {
    writer.Key("stages");
    writer.BeginObject();
    writer.Key("acquire_ms").Value(outcome.seconds_acquire * 1e3);
    writer.Key("summarize_ms").Value(outcome.seconds_summarize * 1e3);
    writer.Key("optimize_ms").Value(outcome.seconds_optimize * 1e3);
    writer.EndObject();
  }
  writer.Key("h");
  AppendMatrix(&writer, outcome.estimate.h);
  writer.EndObject();
  return writer.Take();
}

std::string FgrServer::HandleLabel(const Request& request) {
  EstimateOutcome outcome;
  Status status = RunEstimate(request, &outcome);
  if (!status.ok()) {
    ++errors_;
    metrics_.requests_errors.fetch_add(1, kRelaxed);
    return ErrorResponseLine(status, request.version);
  }
  LinBpResult prop;
  Stopwatch propagate_timer;
  if (outcome.mapped != nullptr) {
    // Propagate straight over the mapped adjacency — the view overload
    // runs the identical kernels RunLinBp(graph, ...) runs in-core.
    FGR_TRACE_SPAN("serve/propagate");
    prop = RunLinBp(outcome.mapped->View(), outcome.mapped->degrees(),
                    *outcome.seeds, outcome.estimate.h);
  } else {
    // Non-resident: block-row propagation over the same panel stream the
    // summarization used; only the n×k belief state is resident. Labels
    // match the resident path bit for bit in serial runs.
    FGR_TRACE_SPAN("serve/propagate");
    BlockRowReaderOptions reader_options;
    reader_options.memory_budget_bytes = options_.streaming_budget_bytes;
    Result<LinBpResult> streamed = PropagateLinBPStreaming(
        outcome.canonical_path, *outcome.seeds, outcome.estimate.h,
        LinBpOptions{}, reader_options);
    if (!streamed.ok()) {
      ++errors_;
      metrics_.requests_errors.fetch_add(1, kRelaxed);
      return ErrorResponseLine(streamed.status(), request.version);
    }
    prop = std::move(streamed).value();
  }
  outcome.seconds_propagate = propagate_timer.Seconds();
  const Labeling predicted =
      LabelsFromBeliefs(prop.beliefs, *outcome.seeds);
  ++labels_;
  JsonWriter writer;
  writer.BeginObject();
  if (request.version >= 1) writer.Key("v").Value(request.version);
  writer.Key("ok").Value(true);
  writer.Key("op").Value("label");
  writer.Key("dataset").Value(request.dataset);
  writer.Key("resident").Value(outcome.mapped != nullptr);
  writer.Key("summary_source").Value(SummarySourceName(outcome.source));
  writer.Key("n").Value(outcome.num_nodes);
  writer.Key("m").Value(outcome.num_edges);
  writer.Key("k").Value(
      static_cast<std::int64_t>(outcome.seeds->num_classes()));
  writer.Key("labeled").Value(outcome.seeds->NumLabeled());
  writer.Key("energy").Value(outcome.estimate.energy);
  writer.Key("linbp_iterations").Value(prop.iterations_run);
  if (request.version >= 1) {
    writer.Key("stages");
    writer.BeginObject();
    writer.Key("acquire_ms").Value(outcome.seconds_acquire * 1e3);
    writer.Key("summarize_ms").Value(outcome.seconds_summarize * 1e3);
    writer.Key("optimize_ms").Value(outcome.seconds_optimize * 1e3);
    writer.Key("propagate_ms").Value(outcome.seconds_propagate * 1e3);
    writer.EndObject();
  }
  writer.Key("h");
  AppendMatrix(&writer, outcome.estimate.h);
  writer.Key("labels");
  writer.BeginArray();
  for (NodeId i = 0; i < predicted.num_nodes(); ++i) {
    writer.Value(static_cast<std::int64_t>(predicted.label(i)));
  }
  writer.EndArray();
  writer.EndObject();
  return writer.Take();
}

std::string FgrServer::HandleStats(int version) {
  const SummaryCache::Counters summary = summaries_.counters();
  const DatasetCache::Counters data = datasets_.counters();
  JsonWriter writer;
  writer.BeginObject();
  if (version >= 1) writer.Key("v").Value(version);
  writer.Key("ok").Value(true);
  writer.Key("op").Value("stats");
  writer.Key("uptime_seconds").Value(uptime_.Seconds());
  writer.Key("requests").Value(requests_.load());
  writer.Key("errors").Value(errors_.load());
  writer.Key("estimates").Value(estimates_.load());
  writer.Key("labels").Value(labels_.load());
  writer.Key("connections").Value(connections_total_.load());
  writer.Key("workers").Value(options_.worker_threads);
  writer.Key("summary");
  writer.BeginObject();
  writer.Key("memory_hits").Value(summary.memory_hits);
  writer.Key("disk_hits").Value(summary.disk_hits);
  writer.Key("computed").Value(summary.computed);
  writer.Key("invalidations").Value(summary.invalidations);
  writer.EndObject();
  writer.Key("datasets");
  writer.BeginObject();
  writer.Key("hits").Value(data.hits);
  writer.Key("misses").Value(data.misses);
  writer.Key("evictions").Value(data.evictions);
  writer.Key("stale_reopens").Value(data.stale_reopens);
  writer.Key("resident").Value(datasets_.entries());
  writer.Key("resident_bytes").Value(datasets_.resident_bytes());
  writer.Key("budget_bytes").Value(datasets_.byte_budget());
  writer.EndObject();
  writer.EndObject();
  return writer.Take();
}

std::string FgrServer::HandleDatasets(int version) {
  JsonWriter writer;
  writer.BeginObject();
  if (version >= 1) writer.Key("v").Value(version);
  writer.Key("ok").Value(true);
  writer.Key("op").Value("datasets");
  writer.Key("resident");
  writer.BeginArray();
  for (const std::string& path : datasets_.ResidentPaths()) {
    writer.Value(path);
  }
  writer.EndArray();
  writer.Key("resident_bytes").Value(datasets_.resident_bytes());
  writer.Key("budget_bytes").Value(datasets_.byte_budget());
  writer.EndObject();
  return writer.Take();
}

std::string FgrServer::MetricsJson(int version) const {
  const SummaryCache::Counters summary = summaries_.counters();
  const DatasetCache::Counters data = datasets_.counters();
  JsonWriter writer;
  writer.BeginObject();
  if (version >= 1) writer.Key("v").Value(version);
  writer.Key("ok").Value(true);
  writer.Key("op").Value("metrics");
  writer.Key("uptime_seconds").Value(uptime_.Seconds());
  writer.Key("connections");
  writer.BeginObject();
  writer.Key("accepted").Value(metrics_.connections_accepted.load(kRelaxed));
  writer.Key("active").Value(metrics_.connections_active.load(kRelaxed));
  writer.Key("evicted_slow")
      .Value(metrics_.connections_evicted_slow.load(kRelaxed));
  writer.Key("closed_idle")
      .Value(metrics_.connections_closed_idle.load(kRelaxed));
  writer.EndObject();
  writer.Key("requests");
  writer.BeginObject();
  writer.Key("total").Value(metrics_.requests_total.load(kRelaxed));
  writer.Key("estimate").Value(metrics_.requests_estimate.load(kRelaxed));
  writer.Key("label").Value(metrics_.requests_label.load(kRelaxed));
  writer.Key("stats").Value(metrics_.requests_stats.load(kRelaxed));
  writer.Key("datasets").Value(metrics_.requests_datasets.load(kRelaxed));
  writer.Key("metrics").Value(metrics_.requests_metrics.load(kRelaxed));
  writer.Key("errors").Value(metrics_.requests_errors.load(kRelaxed));
  writer.Key("shed").Value(metrics_.requests_shed.load(kRelaxed));
  writer.Key("timed_out").Value(metrics_.requests_timed_out.load(kRelaxed));
  writer.EndObject();
  writer.Key("queue");
  writer.BeginObject();
  writer.Key("depth").Value(metrics_.queue_depth.load(kRelaxed));
  writer.Key("high_water").Value(options_.queue_high_water);
  writer.Key("workers").Value(options_.worker_threads);
  writer.EndObject();
  writer.Key("io");
  writer.BeginObject();
  writer.Key("bytes_read").Value(metrics_.bytes_read.load(kRelaxed));
  writer.Key("bytes_written").Value(metrics_.bytes_written.load(kRelaxed));
  writer.EndObject();
  writer.Key("latency");
  writer.BeginObject();
  writer.Key("count")
      .Value(static_cast<std::int64_t>(metrics_.latency.count()));
  writer.Key("p50_ms").Value(metrics_.latency.QuantileSeconds(0.5) * 1e3);
  writer.Key("p99_ms").Value(metrics_.latency.QuantileSeconds(0.99) * 1e3);
  writer.EndObject();
  writer.Key("summary");
  writer.BeginObject();
  writer.Key("memory_hits").Value(summary.memory_hits);
  writer.Key("disk_hits").Value(summary.disk_hits);
  writer.Key("computed").Value(summary.computed);
  writer.Key("invalidations").Value(summary.invalidations);
  writer.EndObject();
  writer.Key("datasets");
  writer.BeginObject();
  writer.Key("hits").Value(data.hits);
  writer.Key("misses").Value(data.misses);
  writer.Key("evictions").Value(data.evictions);
  writer.Key("resident").Value(datasets_.entries());
  writer.Key("resident_bytes").Value(datasets_.resident_bytes());
  writer.EndObject();
  if (version >= 2) {
    // v2: per-stage request histograms (queue wait → worker compute →
    // response write) and pipeline/kernel counters from src/obs.
    writer.Key("stages");
    writer.BeginObject();
    const auto emit_ring = [&writer](const char* key,
                                     const LatencyRing& ring) {
      writer.Key(key);
      writer.BeginObject();
      writer.Key("count").Value(static_cast<std::int64_t>(ring.count()));
      writer.Key("p50_ms").Value(ring.QuantileSeconds(0.5) * 1e3);
      writer.Key("p99_ms").Value(ring.QuantileSeconds(0.99) * 1e3);
      writer.EndObject();
    };
    emit_ring("queue_wait", metrics_.stage_queue_wait);
    emit_ring("compute", metrics_.stage_compute);
    emit_ring("write", metrics_.stage_write);
    writer.EndObject();
    writer.Key("pipeline");
    writer.BeginObject();
    for (int c = 0; c < static_cast<int>(obs::PipelineCounter::kCount);
         ++c) {
      const auto counter = static_cast<obs::PipelineCounter>(c);
      writer.Key(obs::CounterName(counter)).Value(obs::GetCounter(counter));
    }
    const std::int64_t depth_samples =
        obs::GetCounter(obs::PipelineCounter::kPrefetchQueueDepthSamples);
    writer.Key("prefetch_queue_depth_mean")
        .Value(depth_samples > 0
                   ? static_cast<double>(obs::GetCounter(
                         obs::PipelineCounter::kPrefetchQueueDepthSum)) /
                         static_cast<double>(depth_samples)
                   : 0.0);
    writer.EndObject();
  }
  writer.EndObject();
  return writer.Take();
}

std::string FgrServer::HandleMetrics(int version) {
  return MetricsJson(version);
}

std::string FgrServer::HandleRequestLine(const std::string& line) {
  // Request-scoped id, shared with the access-log line below so log
  // entries from a busy daemon can be correlated per request.
  const std::int64_t request_id = ++requests_;
  metrics_.requests_total.fetch_add(1, kRelaxed);
  const SteadyClock::time_point started = SteadyClock::now();
  const char* op_name = "?";
  std::string dataset;
  bool ok = true;
  std::string response;
  if (static_cast<std::int64_t>(line.size()) > options_.max_request_bytes) {
    ++errors_;
    metrics_.requests_errors.fetch_add(1, kRelaxed);
    ok = false;
    response = ErrorResponseLine(Status::InvalidArgument(
        "request of " + std::to_string(line.size()) +
        " bytes exceeds the " + std::to_string(options_.max_request_bytes) +
        "-byte limit"));
  } else {
    int version = 0;
    Result<Request> parsed = ParseRequest(line, &version);
    if (!parsed.ok()) {
      ++errors_;
      metrics_.requests_errors.fetch_add(1, kRelaxed);
      ok = false;
      response = ErrorResponseLine(parsed.status(), version);
    } else {
      const Request& request = parsed.value();
      dataset = request.dataset;
      const std::int64_t errors_before = errors_.load(kRelaxed);
      switch (request.op) {
        case RequestOp::kEstimate:
          op_name = "estimate";
          metrics_.requests_estimate.fetch_add(1, kRelaxed);
          response = HandleEstimate(request);
          break;
        case RequestOp::kLabel:
          op_name = "label";
          metrics_.requests_label.fetch_add(1, kRelaxed);
          response = HandleLabel(request);
          break;
        case RequestOp::kStats:
          op_name = "stats";
          metrics_.requests_stats.fetch_add(1, kRelaxed);
          response = HandleStats(request.version);
          break;
        case RequestOp::kDatasets:
          op_name = "datasets";
          metrics_.requests_datasets.fetch_add(1, kRelaxed);
          response = HandleDatasets(request.version);
          break;
        case RequestOp::kMetrics:
          op_name = "metrics";
          metrics_.requests_metrics.fetch_add(1, kRelaxed);
          response = HandleMetrics(request.version);
          break;
      }
      ok = errors_.load(kRelaxed) == errors_before;
    }
  }
  const double millis =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          SteadyClock::now() - started)
          .count();
  FGR_LOG(kInfo, "serve")
      << "req=" << request_id << " op=" << op_name
      << (dataset.empty() ? std::string()
                          : std::string(" dataset=") + dataset)
      << " ok=" << (ok ? 1 : 0) << " ms=" << millis;
  return response;
}

Status FgrServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  draining_.store(false);
  stopping_.store(false);
  drained_.store(false);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host '" + options_.host +
                                   "' (use a dotted IPv4 address)");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int error = errno;
    ::close(fd);
    return Status::Internal("bind to " + options_.host + ":" +
                            std::to_string(options_.port) + " failed: " +
                            std::strerror(error));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  port_ = static_cast<int>(ntohs(address.sin_port));
  // Non-blocking so the accept loop can drain the backlog to EAGAIN.
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);

  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    ::close(fd);
    return Status::Internal("epoll_create1() failed");
  }
  const int wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd < 0) {
    ::close(epoll_fd);
    ::close(fd);
    return Status::Internal("eventfd() failed");
  }
  // The listen and wake fds are level-triggered (cheap, no starvation
  // subtleties); client sockets are edge-triggered.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(wake_fd);
    ::close(epoll_fd);
    ::close(fd);
    return Status::Internal("epoll_ctl(listen) failed");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
    ::close(wake_fd);
    ::close(epoll_fd);
    ::close(fd);
    return Status::Internal("epoll_ctl(wake) failed");
  }

  listen_fd_ = fd;
  epoll_fd_ = epoll_fd;
  wake_fd_ = wake_fd;

  running_.store(true);
  event_thread_ = std::thread([this] { EventLoop(); });
  const int workers = options_.worker_threads > 0 ? options_.worker_threads
                                                  : 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void FgrServer::Stop() {
  if (!running_.exchange(false)) return;

  // Phase 1 — drain: stop accepting, let queued and in-flight requests
  // finish and their responses flush. The event thread reports completion
  // through drained_.
  draining_.store(true);
  WakeEventThread();
  const auto deadline =
      SteadyClock::now() +
      std::chrono::milliseconds(options_.drain_timeout_ms);
  while (!drained_.load() && SteadyClock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Phase 2 — tear down: stop the event thread and workers, then close
  // everything the event thread owned (safe only after the join).
  stopping_.store(true);
  {
    // Empty critical section: a worker that evaluated its wait predicate
    // before stopping_ was set cannot block again until we release the
    // work mutex, so the notify below can never be lost.
    std::lock_guard<std::mutex> lock(work_mutex_);
  }
  work_cv_.notify_all();
  WakeEventThread();
  if (event_thread_.joinable()) event_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  for (auto& [id, conn] : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  connections_.clear();
  metrics_.connections_active.store(0, kRelaxed);
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    work_queue_.clear();
  }
  metrics_.queue_depth.store(0, kRelaxed);
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    completions_.clear();
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  epoll_fd_ = -1;
  wake_fd_ = -1;
  listen_fd_ = -1;
}

void FgrServer::WakeEventThread() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // The eventfd counter saturates rather than blocks on overflow; a
  // failed write means the event thread is already scheduled to wake.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

void FgrServer::EventLoop() {
  timers_.Start(SteadyClock::now());
  bool drain_started = false;
  epoll_event events[64];
  std::vector<TimerWheel::Entry> expired;

  while (!stopping_.load(std::memory_order_acquire)) {
    std::int64_t timeout_ms = timers_.MsUntilNext(SteadyClock::now());
    if (timeout_ms < 0 || timeout_ms > 100) timeout_ms = 100;
    const int n = ::epoll_wait(epoll_fd_, events, 64,
                               static_cast<int>(timeout_ms));
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < (n > 0 ? n : 0); ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptNewConnections();
        continue;
      }
      if (tag == kWakeTag) {
        std::uint64_t count = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &count, sizeof(count));
        continue;
      }
      auto found = connections_.find(tag);
      if (found == connections_.end()) continue;  // closed earlier this batch
      Connection* conn = found->second.get();
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        FlushWrites(conn);
        if (connections_.find(tag) == connections_.end()) continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        HandleReadable(conn);
      }
    }

    ProcessCompletions();
    expired.clear();
    timers_.Collect(SteadyClock::now(), &expired);
    if (!expired.empty()) {
      // FireTimers consumes the collected batch (see below).
      for (const TimerWheel::Entry& entry : expired) {
        auto found = connections_.find(entry.conn_id);
        if (found == connections_.end()) continue;
        Connection* conn = found->second.get();
        if (entry.kind == TimerWheel::Kind::kRequest) {
          if (!conn->in_flight ||
              conn->request_generation != entry.generation) {
            continue;  // stale: the request completed
          }
          metrics_.requests_timed_out.fetch_add(1, kRelaxed);
          conn->in_flight = false;
          // Orphan the worker's eventual completion and refuse to serve
          // anything this connection already pipelined — its ordering
          // contract is broken, so it gets the error and the door.
          ++conn->request_generation;
          conn->pending_lines.clear();
          conn->close_after_flush = true;
          QueueResponse(
              conn,
              ServeErrorLine(
                  ServeErrorCode::kTimeout,
                  "request exceeded the " +
                      std::to_string(options_.request_timeout_ms) +
                      " ms deadline; closing connection"));
          FlushWrites(conn);  // may destroy conn
        } else {
          if (conn->idle_generation != entry.generation) continue;
          if (conn->in_flight || !conn->pending_lines.empty() ||
              conn->write_offset < conn->write_buffer.size()) {
            ArmIdleTimer(conn);  // busy, not idle — re-arm
            continue;
          }
          metrics_.connections_closed_idle.fetch_add(1, kRelaxed);
          CloseConnection(conn);
        }
      }
    }

    if (draining_.load(std::memory_order_acquire)) {
      if (!drain_started) {
        drain_started = true;
        // Stop accepting; queued connections in the backlog are dropped
        // when the listen fd closes.
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      }
      bool queue_empty;
      {
        std::lock_guard<std::mutex> lock(work_mutex_);
        queue_empty = work_queue_.empty();
      }
      bool completions_empty;
      {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        completions_empty = completions_.empty();
      }
      bool settled = queue_empty && completions_empty;
      if (settled) {
        for (const auto& [id, conn] : connections_) {
          if (conn->in_flight ||
              conn->write_offset < conn->write_buffer.size()) {
            settled = false;
            break;
          }
        }
      }
      if (settled) drained_.store(true, std::memory_order_release);
    }
  }
}

void FgrServer::AcceptNewConnections() {
  // Bounded batch per wakeup; the listen fd is level-triggered, so a
  // longer backlog re-fires immediately.
  for (int i = 0; i < 128; ++i) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: backlog drained. Anything else (EMFILE, ENFILE,
      // ECONNABORTED, ENOBUFS...) is transient pressure — return and let
      // the level-triggered listen fd retry on the next loop.
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    if (options_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                   sizeof(options_.send_buffer_bytes));
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    metrics_.connections_accepted.fetch_add(1, kRelaxed);
    metrics_.connections_active.fetch_add(1, kRelaxed);
    ++connections_total_;
    Connection* raw = conn.get();
    connections_.emplace(raw->id, std::move(conn));
    ArmIdleTimer(raw);
  }
}

void FgrServer::ArmIdleTimer(Connection* conn) {
  ++conn->idle_generation;
  timers_.Schedule(SteadyClock::now(), options_.idle_timeout_ms, conn->id,
                   conn->idle_generation, TimerWheel::Kind::kIdle);
}

bool FgrServer::UpdateEpoll(Connection* conn, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
  if (want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = conn->id;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0;
}

void FgrServer::HandleReadable(Connection* conn) {
  char chunk[16384];
  while (true) {
    const ssize_t got = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      conn->read_buffer.append(chunk, static_cast<std::size_t>(got));
      metrics_.bytes_read.fetch_add(got, kRelaxed);
      continue;  // edge-triggered: drain until EAGAIN
    }
    if (got == 0) {
      conn->peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn);
    return;
  }

  // Frame complete lines into the pending queue.
  std::size_t start = 0;
  std::size_t newline;
  bool activity = false;
  while ((newline = conn->read_buffer.find('\n', start)) !=
         std::string::npos) {
    std::string line = conn->read_buffer.substr(start, newline - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = newline + 1;
    conn->pending_lines.push_back(std::move(line));
    activity = true;
  }
  if (start > 0) conn->read_buffer.erase(0, start);

  // A partial line beyond the limit can never become a valid request;
  // answer once and drop the connection instead of buffering forever.
  if (!conn->overflowed &&
      static_cast<std::int64_t>(conn->read_buffer.size()) >
          options_.max_request_bytes) {
    conn->overflowed = true;
    ++requests_;
    ++errors_;
    metrics_.requests_total.fetch_add(1, kRelaxed);
    metrics_.requests_errors.fetch_add(1, kRelaxed);
    conn->read_buffer.clear();
    conn->pending_lines.clear();
    conn->close_after_flush = true;
    QueueResponse(conn,
                  ServeErrorLine(ServeErrorCode::kBadRequest,
                                 "request exceeds the " +
                                     std::to_string(
                                         options_.max_request_bytes) +
                                     "-byte limit"));
    FlushWrites(conn);
    return;
  }

  if (activity) ArmIdleTimer(conn);
  DispatchPending(conn);
  FlushWrites(conn);  // may destroy conn
}

void FgrServer::DispatchPending(Connection* conn) {
  while (!conn->in_flight && !conn->pending_lines.empty() &&
         !conn->close_after_flush) {
    std::string line = std::move(conn->pending_lines.front());
    conn->pending_lines.pop_front();
    if (draining_.load(std::memory_order_acquire)) {
      metrics_.requests_shed.fetch_add(1, kRelaxed);
      QueueResponse(conn,
                    ServeErrorLine(ServeErrorCode::kOverloaded,
                                   "server is draining for shutdown"));
      continue;
    }
    // Admission control: responses stay in order because a shed is
    // answered synchronously, in the same position the real response
    // would have taken.
    if (metrics_.queue_depth.load(kRelaxed) >=
        static_cast<std::int64_t>(options_.queue_high_water)) {
      metrics_.requests_shed.fetch_add(1, kRelaxed);
      QueueResponse(
          conn,
          ServeErrorLine(ServeErrorCode::kOverloaded,
                         "server overloaded: worker queue is at its "
                         "high-water mark (" +
                             std::to_string(options_.queue_high_water) +
                             "); retry later"));
      continue;
    }
    conn->in_flight = true;
    ++conn->request_generation;
    conn->request_start = SteadyClock::now();
    timers_.Schedule(conn->request_start, options_.request_timeout_ms,
                     conn->id, conn->request_generation,
                     TimerWheel::Kind::kRequest);
    metrics_.queue_depth.fetch_add(1, kRelaxed);
    {
      std::lock_guard<std::mutex> lock(work_mutex_);
      work_queue_.push_back({conn->id, conn->request_generation,
                             std::move(line), conn->request_start});
    }
    work_cv_.notify_one();
  }
}

void FgrServer::QueueResponse(Connection* conn,
                              const std::string& response) {
  conn->write_buffer += response;
  conn->write_buffer.push_back('\n');
}

void FgrServer::FlushWrites(Connection* conn) {
  // Compact a well-advanced buffer before growing it further.
  if (conn->write_offset > 65536) {
    conn->write_buffer.erase(0, conn->write_offset);
    conn->write_offset = 0;
  }
  while (conn->write_offset < conn->write_buffer.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->write_buffer.data() + conn->write_offset,
               conn->write_buffer.size() - conn->write_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->write_offset += static_cast<std::size_t>(n);
      metrics_.bytes_written.fetch_add(n, kRelaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConnection(conn);
    return;
  }
  if (conn->write_offset >= conn->write_buffer.size()) {
    conn->write_buffer.clear();
    conn->write_offset = 0;
    if (conn->want_write) {
      conn->want_write = false;
      UpdateEpoll(conn, false);
    }
    if (conn->close_after_flush ||
        (conn->peer_closed && !conn->in_flight &&
         conn->pending_lines.empty())) {
      CloseConnection(conn);
    }
    return;
  }
  // Unsent backlog remains: evict a client that cannot keep up, else arm
  // EPOLLOUT and let the event loop resume the flush when writable.
  if (static_cast<std::int64_t>(conn->write_buffer.size() -
                                conn->write_offset) >
      options_.max_write_buffer_bytes) {
    metrics_.connections_evicted_slow.fetch_add(1, kRelaxed);
    CloseConnection(conn);
    return;
  }
  if (!conn->want_write) {
    conn->want_write = true;
    UpdateEpoll(conn, true);
  }
}

void FgrServer::CloseConnection(Connection* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->fd = -1;
  metrics_.connections_active.fetch_sub(1, kRelaxed);
  connections_.erase(conn->id);  // destroys *conn; timers cancel lazily
}

void FgrServer::ProcessCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    auto found = connections_.find(done.conn_id);
    if (found == connections_.end()) continue;  // connection died waiting
    Connection* conn = found->second.get();
    if (!conn->in_flight || conn->request_generation != done.generation) {
      continue;  // timed out: the error response already went out
    }
    conn->in_flight = false;
    metrics_.latency.Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - conn->request_start)
            .count());
    const SteadyClock::time_point write_start = SteadyClock::now();
    QueueResponse(conn, done.response);
    ArmIdleTimer(conn);
    DispatchPending(conn);
    FlushWrites(conn);  // may destroy conn
    metrics_.stage_write.Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - write_start)
            .count());
  }
}

void FgrServer::WorkerLoop() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait(lock, [this] {
        return stopping_.load() || !work_queue_.empty();
      });
      if (work_queue_.empty()) return;  // stopping
      item = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    metrics_.queue_depth.fetch_sub(1, kRelaxed);
    const SteadyClock::time_point picked_up = SteadyClock::now();
    metrics_.stage_queue_wait.Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            picked_up - item.enqueued)
            .count());
    Completion done;
    done.conn_id = item.conn_id;
    done.generation = item.generation;
    done.response = HandleRequestLine(item.line);
    metrics_.stage_compute.Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - picked_up)
            .count());
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back(std::move(done));
    }
    WakeEventThread();
  }
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) pieces.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return pieces;
}

Status RunDaemon(const std::string& name, const ServerOptions& options,
                 const std::vector<std::string>& preload,
                 bool dump_metrics_on_exit) {
  // Block the shutdown signals before any thread spawns so every thread
  // inherits the mask and sigwait below is the one consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  FgrServer server(options);
  FGR_RETURN_IF_ERROR(server.Start());
  for (const std::string& path : preload) {
    Status status = server.Preload(path);
    if (!status.ok()) {
      server.Stop();
      return Status(status.code(),
                    "preload of " + path + " failed: " + status.message());
    }
  }
  std::printf(
      "%s: serving on %s:%d (workers=%d, budget=%lld MB, preloaded=%zu)\n",
      name.c_str(), server.host().c_str(), server.port(),
      options.worker_threads,
      static_cast<long long>(options.dataset_budget_bytes >> 20),
      preload.size());
  std::printf("%s: kernel backend: %s\n", name.c_str(),
              kernels::IsaName(kernels::ActiveIsa()));
  std::fflush(stdout);  // scripts scrape the port from this line

  int received = 0;
  sigwait(&signals, &received);
  std::printf("%s: received %s, shutting down\n", name.c_str(),
              received == SIGINT ? "SIGINT" : "SIGTERM");
  std::fflush(stdout);
  server.Stop();  // graceful drain, bounded by drain_timeout_ms
  if (dump_metrics_on_exit) {
    std::printf("%s: metrics %s\n", name.c_str(),
                server.MetricsJson(kServeProtocolVersion).c_str());
    std::fflush(stdout);
  }
  return Status::Ok();
}

}  // namespace fgr
