// ServerMetrics: the atomic counter surface behind fgrd's `metrics` verb.
//
// One instance lives in FgrServer for the life of the process. Counters
// are bumped lock-free from the event thread and the worker pool
// (relaxed ordering — each counter is an independent statistic, not a
// synchronization edge) and read on demand by the `metrics` handler and
// `fgrd --dump-metrics-on-exit`. Request latencies go into a fixed-size
// ring of nanosecond samples; p50/p99 are computed over a snapshot at
// read time, so the record path stays a single relaxed store.

#ifndef FGR_SERVE_METRICS_H_
#define FGR_SERVE_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fgr {

// Last-N request latencies, single writer cursor, lock-free readers. The
// ring deliberately keeps recent history rather than a full-run sketch:
// the serving tail of *current* traffic is what the p50/p99 gate cares
// about.
class LatencyRing {
 public:
  static constexpr std::size_t kSize = 4096;

  void Record(std::int64_t nanos) {
    const std::uint64_t slot =
        cursor_.fetch_add(1, std::memory_order_relaxed);
    samples_[slot % kSize].store(nanos, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return cursor_.load(std::memory_order_relaxed);
  }

  // Latency quantile in seconds over the ring's current contents
  // (nearest-rank). Returns 0 when no sample has been recorded.
  double QuantileSeconds(double q) const {
    const std::uint64_t recorded = count();
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(recorded, kSize));
    if (n == 0) return 0.0;
    std::vector<std::int64_t> snapshot(n);
    for (std::size_t i = 0; i < n; ++i) {
      snapshot[i] = samples_[i].load(std::memory_order_relaxed);
    }
    std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(n));
    if (rank >= n) rank = n - 1;
    std::nth_element(snapshot.begin(), snapshot.begin() + rank,
                     snapshot.end());
    return static_cast<double>(snapshot[rank]) * 1e-9;
  }

 private:
  std::array<std::atomic<std::int64_t>, kSize> samples_{};
  std::atomic<std::uint64_t> cursor_{0};
};

// All counters a production operator needs to see at a glance. Gauges
// (active connections, queue depth) are maintained as inc/dec pairs by
// the owning threads; everything else is monotonic.
struct ServerMetrics {
  // Connections.
  std::atomic<std::int64_t> connections_accepted{0};
  std::atomic<std::int64_t> connections_active{0};       // gauge
  std::atomic<std::int64_t> connections_evicted_slow{0};
  std::atomic<std::int64_t> connections_closed_idle{0};

  // Requests by verb (bumped in HandleRequestLine so transport-free
  // callers count too) plus the transport-level outcomes.
  std::atomic<std::int64_t> requests_total{0};
  std::atomic<std::int64_t> requests_estimate{0};
  std::atomic<std::int64_t> requests_label{0};
  std::atomic<std::int64_t> requests_stats{0};
  std::atomic<std::int64_t> requests_datasets{0};
  std::atomic<std::int64_t> requests_metrics{0};
  std::atomic<std::int64_t> requests_errors{0};
  std::atomic<std::int64_t> requests_shed{0};       // admission control
  std::atomic<std::int64_t> requests_timed_out{0};  // per-request deadline

  // Worker queue depth (gauge; the high-water mark is an option, not a
  // metric).
  std::atomic<std::int64_t> queue_depth{0};

  // Socket I/O volume.
  std::atomic<std::int64_t> bytes_read{0};
  std::atomic<std::int64_t> bytes_written{0};

  // End-to-end request latency (dispatch to completion, event-thread
  // clock) for served — not shed — requests.
  LatencyRing latency;
};

}  // namespace fgr

#endif  // FGR_SERVE_METRICS_H_
