// ServerMetrics: the atomic counter surface behind fgrd's `metrics` verb.
//
// One instance lives in FgrServer for the life of the process. Counters
// are bumped lock-free from the event thread and the worker pool
// (relaxed ordering — each counter is an independent statistic, not a
// synchronization edge) and read on demand by the `metrics` handler and
// `fgrd --dump-metrics-on-exit`. Request latencies go into a fixed-size
// ring of nanosecond samples; p50/p99 are computed over a snapshot at
// read time, so the record path stays a single relaxed store.

#ifndef FGR_SERVE_METRICS_H_
#define FGR_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>

#include "obs/histogram.h"

namespace fgr {

// Last-N request latencies; multi-writer Record from any worker thread,
// lock-free readers. The ring logic lives in obs/histogram.h so per-stage
// histograms reuse it.
using LatencyRing = obs::SampleRing<4096>;

// All counters a production operator needs to see at a glance. Gauges
// (active connections, queue depth) are maintained as inc/dec pairs by
// the owning threads; everything else is monotonic.
struct ServerMetrics {
  // Connections.
  std::atomic<std::int64_t> connections_accepted{0};
  std::atomic<std::int64_t> connections_active{0};       // gauge
  std::atomic<std::int64_t> connections_evicted_slow{0};
  std::atomic<std::int64_t> connections_closed_idle{0};

  // Requests by verb (bumped in HandleRequestLine so transport-free
  // callers count too) plus the transport-level outcomes.
  std::atomic<std::int64_t> requests_total{0};
  std::atomic<std::int64_t> requests_estimate{0};
  std::atomic<std::int64_t> requests_label{0};
  std::atomic<std::int64_t> requests_stats{0};
  std::atomic<std::int64_t> requests_datasets{0};
  std::atomic<std::int64_t> requests_metrics{0};
  std::atomic<std::int64_t> requests_errors{0};
  std::atomic<std::int64_t> requests_shed{0};       // admission control
  std::atomic<std::int64_t> requests_timed_out{0};  // per-request deadline

  // Worker queue depth (gauge; the high-water mark is an option, not a
  // metric).
  std::atomic<std::int64_t> queue_depth{0};

  // Socket I/O volume.
  std::atomic<std::int64_t> bytes_read{0};
  std::atomic<std::int64_t> bytes_written{0};

  // End-to-end request latency (dispatch to completion, event-thread
  // clock) for served — not shed — requests.
  LatencyRing latency;

  // Stage breakdown of that end-to-end time (metrics v2):
  //   queue wait  dispatch → worker pickup
  //   compute     HandleRequestLine inside the worker
  //   write       response flush on the event thread
  LatencyRing stage_queue_wait;
  LatencyRing stage_compute;
  LatencyRing stage_write;
};

}  // namespace fgr

#endif  // FGR_SERVE_METRICS_H_
