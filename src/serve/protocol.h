// The fgrd wire protocol: line-delimited JSON over TCP.
//
// Every request is one JSON object on one line; every response is one JSON
// object on one line. The protocol is deliberately tiny — a self-contained
// recursive-descent JSON parser and a writer, no external dependency — and
// doubles round-trip exactly (written with %.17g, parsed with strtod), so
// a client can reconstruct the server's H matrix bit for bit.
//
// Requests (flat objects; unknown keys are ignored):
//   {"op":"estimate","dataset":"/path/g.fgrbin","restarts":10,"lmax":5,
//    "lambda":10.0,"variant":1,"path_type":"nb","seed":7}
//   {"op":"label", ...same fields...}
//   {"op":"stats"}
//   {"op":"datasets"}
//   {"op":"metrics"}
//
// The protocol is versioned via an optional "v" field. Version-less
// requests get the legacy response shapes:
//   {"ok":true, ...op-specific fields...} or
//   {"ok":false,"code":"NotFound","error":"..."}.
// Requests carrying "v":1 get the same success fields prefixed with
// "v":1, and structured errors drawn from a closed taxonomy:
//   {"v":1,"ok":false,"error":{"code":"bad_request","message":"..."}}
// with codes bad_request, unknown_dataset, over_budget, timeout,
// overloaded, internal. Errors the transport itself generates (a shed
// request, a request timeout, an oversized line) always use the v1
// structured shape — they can occur before any request is parsed.
//
// The estimate/label defaults match `fgr_cli estimate` exactly (restarts
// 10, lmax 5, lambda 10, row-stochastic, non-backtracking, seed 7), so a
// bare request reproduces the offline CLI bit for bit. Numeric knobs are
// validated strictly: a wrong-typed field, a non-integral count, a
// negative seed, or a non-finite lambda is rejected with bad_request
// rather than silently clamped or defaulted.

#ifndef FGR_SERVE_PROTOCOL_H_
#define FGR_SERVE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/dce.h"
#include "util/status.h"

namespace fgr {

// A parsed JSON value. Objects keep insertion order (vector of pairs) so
// responses echo fields in a stable order.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Bool(bool value);
  static Json Number(double value);
  static Json String(std::string value);
  static Json Array(std::vector<Json> items);
  static Json Object(std::vector<std::pair<std::string, Json>> members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  // Object member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;

  // Typed member accessors with defaults (used for flat request objects).
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  double GetNumber(const std::string& key, double fallback) const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;

  // Serializes back to compact JSON (doubles as %.17g; integral doubles
  // print without an exponent or trailing ".0", so counts stay greppable).
  std::string Dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

// Parses exactly one JSON value spanning the whole input (trailing
// whitespace allowed). Depth-limited; errors carry the byte offset.
Result<Json> ParseJson(const std::string& text);

// Escapes a string for embedding in JSON (quotes included).
std::string JsonQuote(const std::string& text);

// Incremental writer for compact JSON objects/arrays. Use instead of Json
// trees on the hot response path (no intermediate allocations per field).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& key);
  JsonWriter& Value(const std::string& value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(double value);
  JsonWriter& Value(std::int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<std::int64_t>(value)); }
  JsonWriter& Value(bool value);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Separate();
  std::string out_;
  bool needs_comma_ = false;
};

// The operations fgrd serves.
enum class RequestOp { kEstimate, kLabel, kStats, kDatasets, kMetrics };

// Highest protocol version this build understands. Responses echo the
// *request's* version, so v1 clients keep seeing exactly the v1 shape;
// v2 adds the stage/pipeline sections to `metrics` and the per-request
// "stages" breakdown to estimate/label.
inline constexpr int kServeProtocolVersion = 2;

// A validated request. Estimation fields default to the fgr_cli defaults.
struct Request {
  RequestOp op = RequestOp::kStats;
  int version = 0;      // 0 = legacy shape, 1/2 = versioned shapes
  std::string dataset;  // required for estimate/label
  DceOptions options;   // restarts/lmax/lambda/variant/path_type/seed
};

// Parses and validates one request line: JSON must parse, be an object,
// carry a known "op", name a dataset when the op needs one, and keep the
// numeric knobs typed, integral where integers are expected, and in
// range. Returns InvalidArgument with a precise message otherwise. When
// `version_out` is non-null it is set to the request's protocol version
// as soon as it is known — even on a validation failure — so the caller
// can shape the error response correctly.
Result<Request> ParseRequest(const std::string& line,
                             int* version_out = nullptr);

// The protocol v1 error taxonomy. Every error a client can observe maps
// to exactly one of these codes.
enum class ServeErrorCode {
  kBadRequest,      // malformed JSON, unknown op, out-of-range knob
  kUnknownDataset,  // dataset not registered / file missing
  kOverBudget,      // dataset exceeds the residency or streaming budget
  kTimeout,         // request exceeded the per-request deadline
  kOverloaded,      // shed by admission control at the queue high water
  kInternal,        // anything else
};

// Wire spelling of a taxonomy code ("bad_request", ...).
const char* ServeErrorCodeName(ServeErrorCode code);

// Maps a handler Status to its taxonomy code (InvalidArgument →
// bad_request, NotFound → unknown_dataset, FailedPrecondition →
// over_budget, else internal).
ServeErrorCode ServeErrorCodeFromStatus(StatusCode code);

// Error line for a failed request. version 0 keeps the legacy
// {"ok":false,"code":<StatusCodeName>,"error":<message>} shape; version
// ≥ 1 emits {"v":<version>,"ok":false,"error":{"code":...,"message":...}}.
std::string ErrorResponseLine(const Status& status, int version = 0);

// Structured error line. `version` is echoed as "v"; the transport-level
// emitters (shed, timeout, oversized line — no parsed request in hand)
// use the default, the server's own version.
std::string ServeErrorLine(ServeErrorCode code, const std::string& message,
                           int version = kServeProtocolVersion);

// Reference client for the line protocol: one blocking TCP connection,
// request line in → response line out, reusable across exchanges. The one
// implementation of connect/send-all/recv-until-newline shared by
// `fgr_cli query`, the serve benchmarks, and the tests — sends with
// MSG_NOSIGNAL so a daemon dying mid-exchange surfaces as an error Status,
// never SIGPIPE.
class LineClient {
 public:
  static Result<LineClient> Connect(const std::string& host, int port);

  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  ~LineClient();

  // Sends `request` + '\n', reads one '\n'-terminated response line
  // (returned without the newline). Pipelined responses queue in the
  // internal buffer for subsequent calls.
  Result<std::string> Exchange(const std::string& request);

 private:
  LineClient() = default;
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace fgr

#endif  // FGR_SERVE_PROTOCOL_H_
