#include "serve/summary_cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/check.h"

namespace fgr {
namespace {

constexpr char kMagic[8] = {'f', 'g', 'r', 's', 'u', 'm', '0', '1'};
constexpr std::uint32_t kEndianCheck = 0x01020304u;

struct Header {
  char magic[8];
  std::uint32_t endian_check;
  std::int32_t path_type;
  std::uint64_t content_hash;
  std::int64_t num_nodes;
  std::int32_t num_classes;
  std::int32_t max_length;
};
static_assert(sizeof(Header) == 40, "fgrsum header must pack to 40 bytes");

std::int32_t PathTypeCode(PathType type) {
  return type == PathType::kNonBacktracking ? 1 : 2;
}

// Advisory writer lock for a sidecar, held for the lifetime of the object.
// Locks a stable `<path>.lock` companion rather than the sidecar itself:
// the temp+rename publish swaps the sidecar's inode, so a lock taken on
// the old inode would not exclude a third writer locking the new one.
// Best effort — a filesystem without flock (or a read-only directory)
// degrades to the unsynchronized behavior, never to a write failure.
class SidecarLock {
 public:
  explicit SidecarLock(const std::string& path) {
    fd_ = ::open((path + ".lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~SidecarLock() {
    if (fd_ >= 0) ::close(fd_);  // close releases the flock
  }
  SidecarLock(const SidecarLock&) = delete;
  SidecarLock& operator=(const SidecarLock&) = delete;

 private:
  int fd_ = -1;
};

}  // namespace

std::string FgrSumPathFor(const std::string& fgrbin_path,
                          PathType path_type) {
  return fgrbin_path +
         (path_type == PathType::kNonBacktracking ? "" : ".full") +
         kFgrSumExtension;
}

Status WriteFgrSum(const DatasetSummary& summary, const std::string& path) {
  FGR_CHECK_EQ(static_cast<int>(summary.m_raw.size()), summary.max_length);
  // Serialize concurrent writers (the multi-process fgrd story) and keep
  // the longest prefix: re-read under the lock and skip the write when a
  // competing writer already published the same dataset's statistics to a
  // greater or equal ℓ — an unsynchronized last-writer-wins rename could
  // otherwise clobber a just-written ℓ=10 sidecar with an ℓ=5 one.
  SidecarLock lock(path);
  {
    Result<DatasetSummary> existing = ReadFgrSum(path);
    if (existing.ok() &&
        existing.value().content_hash == summary.content_hash &&
        existing.value().path_type == summary.path_type &&
        existing.value().max_length >= summary.max_length) {
      return Status::Ok();  // the disk copy already subsumes ours
    }
  }
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.endian_check = kEndianCheck;
  header.path_type = PathTypeCode(summary.path_type);
  header.content_hash = summary.content_hash;
  header.num_nodes = summary.num_nodes;
  header.num_classes = summary.num_classes;
  header.max_length = summary.max_length;

  // Temp file + rename: concurrent readers (another daemon, a crash
  // mid-write) can only ever see a complete sidecar.
  const std::string temp =
      path + ".tmp." + std::to_string(::getpid());
  std::ofstream out(temp, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot write " + temp);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (const DenseMatrix& m : summary.m_raw) {
    FGR_CHECK_EQ(m.rows(), summary.num_classes);
    FGR_CHECK_EQ(m.cols(), summary.num_classes);
    out.write(reinterpret_cast<const char*>(m.data().data()),
              static_cast<std::streamsize>(m.data().size() *
                                           sizeof(double)));
  }
  out.flush();
  out.close();
  if (!out) {
    std::remove(temp.c_str());
    return Status::Internal("write failed for " + temp);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::Internal("cannot rename " + temp + " to " + path);
  }
  return Status::Ok();
}

Result<DatasetSummary> ReadFgrSum(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  Header header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in) return Status::InvalidArgument(path + ": truncated fgrsum file");
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not an fgrsum file");
  }
  if (header.endian_check != kEndianCheck) {
    return Status::InvalidArgument(
        path + ": fgrsum file written on an incompatible (byte-swapped) "
        "machine");
  }
  if (header.path_type != 1 && header.path_type != 2) {
    return Status::InvalidArgument(path + ": unknown path type");
  }
  // The matrices are tiny (k ≤ 2^15 is already absurd for classes), so the
  // size gate mirrors fgrbin's: reject before allocating.
  if (header.num_nodes < 0 || header.num_classes < 1 ||
      header.num_classes >= (1 << 15) || header.max_length < 1 ||
      header.max_length > 1024) {
    return Status::InvalidArgument(path + ": fgrsum header sizes implausible");
  }
  in.seekg(0, std::ios::end);
  const std::int64_t file_size = static_cast<std::int64_t>(in.tellg());
  const std::int64_t k = header.num_classes;
  const std::int64_t expected =
      static_cast<std::int64_t>(sizeof(Header)) +
      static_cast<std::int64_t>(header.max_length) * k * k * 8;
  if (file_size < expected) {
    return Status::InvalidArgument(path + ": truncated fgrsum file");
  }
  in.seekg(static_cast<std::streamoff>(sizeof(Header)), std::ios::beg);

  DatasetSummary summary;
  summary.path_type = header.path_type == 1 ? PathType::kNonBacktracking
                                            : PathType::kFull;
  summary.max_length = header.max_length;
  summary.num_nodes = header.num_nodes;
  summary.num_classes = header.num_classes;
  summary.content_hash = header.content_hash;
  summary.m_raw.reserve(static_cast<std::size_t>(header.max_length));
  std::vector<double> buffer(static_cast<std::size_t>(k * k));
  for (std::int32_t l = 0; l < header.max_length; ++l) {
    in.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size() * sizeof(double)));
    if (!in) return Status::InvalidArgument(path + ": truncated fgrsum file");
    DenseMatrix m(k, k);
    for (std::int64_t i = 0; i < k; ++i) {
      std::memcpy(m.RowPtr(i), buffer.data() + i * k,
                  static_cast<std::size_t>(k) * sizeof(double));
    }
    summary.m_raw.push_back(std::move(m));
  }
  return summary;
}

GraphStatistics StatisticsFromSummary(const DatasetSummary& summary,
                                      int max_length,
                                      NormalizationVariant variant) {
  FGR_CHECK_GE(max_length, 1);
  FGR_CHECK_LE(max_length, summary.max_length);
  GraphStatistics stats;
  stats.path_type = summary.path_type;
  stats.variant = variant;
  stats.m_raw.assign(summary.m_raw.begin(),
                     summary.m_raw.begin() + max_length);
  stats.p_hat.reserve(stats.m_raw.size());
  for (const DenseMatrix& m : stats.m_raw) {
    stats.p_hat.push_back(NormalizeStatistics(m, variant));
  }
  stats.seconds = 0.0;  // the graph pass was skipped
  return stats;
}

const char* SummarySourceName(SummarySource source) {
  switch (source) {
    case SummarySource::kMemory: return "memory";
    case SummarySource::kDisk: return "disk";
    case SummarySource::kComputed: return "computed";
  }
  return "unknown";
}

Result<std::shared_ptr<const DatasetSummary>> SummaryCache::GetOrCompute(
    const std::string& fgrbin_path, std::uint64_t content_hash,
    PathType path_type, int min_length, const ComputeFn& compute,
    SummarySource* source) {
  FGR_CHECK_GE(min_length, 1);
  const std::string key =
      fgrbin_path + (path_type == PathType::kNonBacktracking ? "|nb"
                                                             : "|full");
  // A swept state (keyed_state.h) only costs the re-read of the .fgrsum
  // sidecar on that dataset's next request.
  std::shared_ptr<KeyState> state = states_.StateFor(key);

  // Serialize miss handling per dataset: a second concurrent request for a
  // cold dataset waits here and then takes the memory hit below instead of
  // redundantly re-summarizing.
  std::lock_guard<std::mutex> compute_lock(state->compute_mutex);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::shared_ptr<const DatasetSummary>& cached = state->summary;
    if (cached != nullptr) {
      if (cached->content_hash == content_hash &&
          cached->max_length >= min_length) {
        ++counters_.memory_hits;
        if (source != nullptr) *source = SummarySource::kMemory;
        return cached;
      }
      if (cached->content_hash != content_hash) ++counters_.invalidations;
      state->summary = nullptr;
    }
  }

  // Disk: a sidecar from a previous process (or a previous, longer
  // request) satisfies the call when its hash still matches the bytes.
  const std::string sidecar = FgrSumPathFor(fgrbin_path, path_type);
  Result<DatasetSummary> from_disk = ReadFgrSum(sidecar);
  if (from_disk.ok() && from_disk.value().content_hash == content_hash &&
      from_disk.value().path_type == path_type &&
      from_disk.value().max_length >= min_length) {
    auto summary = std::make_shared<const DatasetSummary>(
        std::move(from_disk).value());
    std::lock_guard<std::mutex> lock(mutex_);
    state->summary = summary;
    ++counters_.disk_hits;
    if (source != nullptr) *source = SummarySource::kDisk;
    return std::shared_ptr<const DatasetSummary>(summary);
  }

  Result<DatasetSummary> computed = compute(min_length);
  if (!computed.ok()) return computed.status();
  FGR_CHECK_GE(computed.value().max_length, min_length)
      << "compute callback returned fewer passes than requested";
  computed.value().content_hash = content_hash;
  computed.value().path_type = path_type;
  auto summary =
      std::make_shared<const DatasetSummary>(std::move(computed).value());
  if (persist_sidecars_) {
    // Best effort: a read-only data directory degrades to recompute-on-
    // restart, not to a serving failure.
    (void)WriteFgrSum(*summary, sidecar);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state->summary = summary;
    ++counters_.computed;
  }
  if (source != nullptr) *source = SummarySource::kComputed;
  return std::shared_ptr<const DatasetSummary>(summary);
}

SummaryCache::Counters SummaryCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace fgr
