// A bounded map of per-key shared state for the serving caches.
//
// Both caches serialize expensive per-dataset work (a cold mmap open, a
// summarization) on a mutex owned by a per-key state object, so concurrent
// misses on the same dataset coalesce while different datasets proceed in
// parallel. This template is that map, in one place: StateFor returns the
// state for `key`, creating it on first use, and — once the map outgrows
// `max_entries` — sweeps idle entries (held by nobody but the map) so a
// rotating dataset population cannot grow the bookkeeping without bound.
// Losing a swept entry is harmless: the worst case is one redundant
// open/compute if two requests for that key ever race again.

#ifndef FGR_SERVE_KEYED_STATE_H_
#define FGR_SERVE_KEYED_STATE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace fgr {

template <typename State>
class KeyedStateMap {
 public:
  explicit KeyedStateMap(std::size_t max_entries = 1024)
      : max_entries_(max_entries) {}

  std::shared_ptr<State> StateFor(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<State>& state = states_[key];
    if (state == nullptr) state = std::make_shared<State>();
    std::shared_ptr<State> result = state;
    if (states_.size() > max_entries_) {
      for (auto it = states_.begin(); it != states_.end();) {
        if (it->second.use_count() == 1 && it->second != result) {
          it = states_.erase(it);
        } else {
          ++it;
        }
      }
    }
    return result;
  }

 private:
  std::size_t max_entries_;
  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<State>> states_;
};

}  // namespace fgr

#endif  // FGR_SERVE_KEYED_STATE_H_
