#include "gen/degree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace fgr {
namespace {

// Scales non-negative weights to integers summing to `total` by largest
// remainder, with a floor of 1 per entry when total ≥ n.
std::vector<std::int64_t> RoundToTotal(const std::vector<double>& weights,
                                       std::int64_t total) {
  const std::size_t n = weights.size();
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;
  FGR_CHECK_GT(weight_sum, 0.0);

  const bool enforce_floor = total >= static_cast<std::int64_t>(n);
  std::vector<std::int64_t> result(n, 0);
  std::vector<std::pair<double, std::size_t>> remainders(n);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = weights[i] / weight_sum * static_cast<double>(total);
    std::int64_t floor_value = static_cast<std::int64_t>(std::floor(exact));
    if (enforce_floor) floor_value = std::max<std::int64_t>(floor_value, 1);
    result[i] = floor_value;
    remainders[i] = {exact - std::floor(exact), i};
    assigned += floor_value;
  }
  // Distribute the shortfall to the largest remainders (or trim overshoot
  // from the smallest ones while respecting the floor).
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t cursor = 0;
  while (assigned < total) {
    result[remainders[cursor % n].second] += 1;
    ++assigned;
    ++cursor;
  }
  cursor = n;
  while (assigned > total) {
    const std::size_t index = remainders[(cursor - 1) % n].second;
    --cursor;
    const std::int64_t floor_value = enforce_floor ? 1 : 0;
    if (result[index] > floor_value) {
      result[index] -= 1;
      --assigned;
    }
  }
  return result;
}

}  // namespace

std::vector<std::int64_t> MakeDegreeSequence(std::int64_t num_nodes,
                                             std::int64_t num_edges,
                                             DegreeDistribution distribution,
                                             double power_exponent, Rng& rng) {
  FGR_CHECK_GT(num_nodes, 0);
  FGR_CHECK_GE(num_edges, 0);
  const std::size_t n = static_cast<std::size_t>(num_nodes);
  std::vector<double> weights(n, 1.0);
  if (distribution == DegreeDistribution::kPowerLaw) {
    FGR_CHECK_GT(power_exponent, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = std::pow(static_cast<double>(i + 1), -power_exponent);
    }
  }
  std::vector<std::int64_t> degrees = RoundToTotal(weights, 2 * num_edges);
  rng.Shuffle(degrees);
  return degrees;
}

}  // namespace fgr
