// Mimics of the paper's 8 real-world datasets (Section 5.3).
//
// The raw datasets (Cora, Citeseer, Hep-Th, MovieLens, Enron, Prop-37,
// Pokec-Gender, Flickr) are not redistributable with this repository, but
// the paper publishes everything the estimation problem depends on: the
// sizes (n, m, k — Fig. 8) and the full gold-standard compatibility matrices
// (Fig. 13). Each mimic plants the published compatibility matrix at the
// published size with a power-law degree profile and class proportions
// chosen to reflect the dataset's structure (bipartite-ish tri-partite for
// the user/item/tag graphs, near-balanced genders for Pokec, year bands for
// Hep-Th). Every algorithm under test consumes only (W, X), so the mimics
// exercise exactly the signal/sparsity regime of the originals. See
// docs/ARCHITECTURE.md ("Dataset mimics") for the substitution rationale.

#ifndef FGR_GEN_DATASETS_H_
#define FGR_GEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gen/planted.h"
#include "matrix/dense.h"
#include "util/random.h"
#include "util/status.h"

namespace fgr {

struct DatasetSpec {
  std::string name;
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
  std::int64_t num_classes = 0;
  // Class proportions α (documented estimates; the paper does not publish
  // them — see docs/ARCHITECTURE.md, "Dataset mimics").
  std::vector<double> class_fractions;
  // Gold-standard compatibility matrix as published in Fig. 13 (rounded to
  // two decimals there; cleaned to doubly-stochastic at load).
  DenseMatrix gold_compatibility;
};

// All eight specs, in the paper's order.
const std::vector<DatasetSpec>& RealWorldDatasetSpecs();

// Spec lookup by (case-sensitive) name, e.g. "Pokec-Gender".
Result<DatasetSpec> FindDatasetSpec(const std::string& name);

// Generates the mimic at `scale` ∈ (0, 1]: n and m are multiplied by scale
// (minimum 200 nodes) so the million-node graphs can be shrunk for quick
// runs. scale = 1 reproduces the published sizes.
Result<PlantedGraph> GenerateDatasetMimic(const DatasetSpec& spec,
                                          double scale, Rng& rng);

}  // namespace fgr

#endif  // FGR_GEN_DATASETS_H_
