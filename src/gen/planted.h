// Planted-compatibility synthetic graph generator (Section 5, "Synthetic
// graph generator").
//
// A stochastic-block-model variant with the paper's two generalizations:
// (1) controlled degree distributions (uniform or power-law 0.3), and
// (2) *planted* rather than expected graph properties — the generator fixes
// a degree sequence, fits an edge-endpoint count matrix M with the desired
// compatibility pattern to the per-class stub budgets (symmetric Sinkhorn),
// and wires edges by stub matching within each class pair. The measured
// neighbor statistics of the output match the planted H (exactly up to
// integer rounding for balanced classes).
//
// Input tuple (n, m, α, H, dist) as in the paper.
//
// The expensive stages — stub-list construction, the per-class stub
// shuffle, edge wiring, and CSR assembly — run on the ParallelFor backend,
// and the shuffle uses counter-based keys (util/shuffle.h), so the
// generated graph depends only on (config, rng seed), never on the thread
// count.

#ifndef FGR_GEN_PLANTED_H_
#define FGR_GEN_PLANTED_H_

#include <cstdint>
#include <vector>

#include "gen/degree.h"
#include "graph/graph.h"
#include "graph/labels.h"
#include "matrix/dense.h"
#include "util/random.h"
#include "util/status.h"

namespace fgr {

struct PlantedGraphConfig {
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;  // target m; actual may be slightly lower
  // α: fraction of nodes per class; must sum to ≈ 1.
  std::vector<double> class_fractions;
  // Desired symmetric compatibility pattern (typically doubly stochastic).
  DenseMatrix compatibility;
  DegreeDistribution degree_distribution = DegreeDistribution::kUniform;
  double power_exponent = 0.3;  // used when degree_distribution == kPowerLaw
};

struct PlantedGraph {
  Graph graph;
  Labeling labels;  // full ground truth
  // The fitted symmetric edge-endpoint target M (k×k, before rounding).
  DenseMatrix target_statistics;
};

// Convenience constructor for the paper's balanced synthetic experiments:
// k classes with equal fractions and the skew-h compatibility matrix.
PlantedGraphConfig MakeSkewConfig(std::int64_t num_nodes, double avg_degree,
                                  std::int64_t num_classes, double skew,
                                  DegreeDistribution distribution =
                                      DegreeDistribution::kPowerLaw);

Result<PlantedGraph> GeneratePlantedGraph(const PlantedGraphConfig& config,
                                          Rng& rng);

}  // namespace fgr

#endif  // FGR_GEN_PLANTED_H_
