#include "gen/datasets.h"

#include <algorithm>
#include <cmath>

#include "gen/sinkhorn.h"
#include "util/check.h"

namespace fgr {
namespace {

DatasetSpec MakeSpec(std::string name, std::int64_t n, std::int64_t m,
                     std::vector<double> fractions, DenseMatrix gold) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.num_nodes = n;
  spec.num_edges = m;
  spec.num_classes = gold.rows();
  spec.class_fractions = std::move(fractions);
  FGR_CHECK_EQ(static_cast<std::int64_t>(spec.class_fractions.size()),
               spec.num_classes);
  // Fig. 13 values are rounded to two decimals; Sinkhorn-normalize so the
  // planted matrix is properly symmetric doubly stochastic.
  Result<DenseMatrix> cleaned = SinkhornNormalize(gold);
  FGR_CHECK(cleaned.ok()) << cleaned.status().ToString();
  spec.gold_compatibility = std::move(cleaned).value();
  return spec;
}

std::vector<DatasetSpec> BuildSpecs() {
  std::vector<DatasetSpec> specs;

  // Cora [Sen et al. 2008]: 7 ML paper categories, strong homophily.
  specs.push_back(MakeSpec(
      "Cora", 2708, 10858,
      {0.30, 0.16, 0.15, 0.13, 0.11, 0.08, 0.07},
      DenseMatrix::FromRows({
          {0.81, 0.01, 0.04, 0.05, 0.06, 0.01, 0.02},
          {0.01, 0.79, 0.02, 0.02, 0.09, 0.01, 0.07},
          {0.04, 0.02, 0.81, 0.02, 0.03, 0.05, 0.04},
          {0.05, 0.02, 0.02, 0.84, 0.05, 0.005, 0.02},
          {0.06, 0.09, 0.03, 0.05, 0.70, 0.01, 0.06},
          {0.01, 0.01, 0.05, 0.005, 0.01, 0.90, 0.02},
          {0.02, 0.07, 0.04, 0.02, 0.06, 0.02, 0.78},
      })));

  // Citeseer [Sen et al. 2008]: 6 CS areas, homophily with a weak DB/IR mix.
  specs.push_back(MakeSpec(
      "Citeseer", 3312, 9428,
      {0.18, 0.08, 0.21, 0.20, 0.18, 0.15},
      DenseMatrix::FromRows({
          {0.77, 0.005, 0.01, 0.13, 0.05, 0.03},
          {0.005, 0.75, 0.06, 0.06, 0.03, 0.10},
          {0.01, 0.06, 0.77, 0.10, 0.03, 0.03},
          {0.13, 0.06, 0.10, 0.48, 0.06, 0.17},
          {0.05, 0.03, 0.03, 0.06, 0.81, 0.02},
          {0.03, 0.10, 0.03, 0.17, 0.02, 0.64},
      })));

  // Hep-Th [KDD Cup 2003]: 11 publication-year bands; banded near-diagonal
  // structure (papers cite nearby years).
  specs.push_back(MakeSpec(
      "Hep-Th", 27770, 352807,
      {0.05, 0.06, 0.07, 0.08, 0.09, 0.10, 0.10, 0.11, 0.11, 0.11, 0.12},
      DenseMatrix::FromRows({
          {0.10, 0.11, 0.14, 0.11, 0.11, 0.08, 0.08, 0.08, 0.04, 0.08, 0.08},
          {0.11, 0.09, 0.12, 0.12, 0.10, 0.08, 0.09, 0.09, 0.05, 0.06, 0.09},
          {0.14, 0.12, 0.11, 0.13, 0.11, 0.10, 0.09, 0.06, 0.03, 0.03, 0.06},
          {0.11, 0.12, 0.13, 0.15, 0.12, 0.10, 0.08, 0.06, 0.03, 0.04, 0.06},
          {0.11, 0.10, 0.11, 0.12, 0.17, 0.13, 0.08, 0.07, 0.03, 0.02, 0.05},
          {0.08, 0.08, 0.10, 0.10, 0.13, 0.18, 0.12, 0.08, 0.04, 0.03, 0.06},
          {0.08, 0.09, 0.09, 0.08, 0.08, 0.12, 0.17, 0.13, 0.07, 0.03, 0.06},
          {0.08, 0.09, 0.06, 0.06, 0.07, 0.08, 0.13, 0.16, 0.14, 0.08, 0.07},
          {0.04, 0.05, 0.03, 0.03, 0.03, 0.04, 0.07, 0.14, 0.28, 0.17, 0.11},
          {0.08, 0.06, 0.03, 0.04, 0.02, 0.03, 0.03, 0.08, 0.17, 0.26, 0.20},
          {0.08, 0.09, 0.06, 0.06, 0.05, 0.06, 0.06, 0.07, 0.11, 0.20, 0.16},
      })));

  // MovieLens [Sen et al. 2009]: users / movies / tags; tags never link to
  // tags (H_33 = 0), strong heterophily.
  specs.push_back(MakeSpec(
      "MovieLens", 26850, 336742,
      {0.20, 0.30, 0.50},
      DenseMatrix::FromRows({
          {0.08, 0.45, 0.47},
          {0.45, 0.02, 0.53},
          {0.47, 0.53, 0.001},
      })));

  // Enron [Liang et al. 2016]: person / email address / message / topic.
  specs.push_back(MakeSpec(
      "Enron", 46463, 613838,
      {0.12, 0.33, 0.48, 0.07},
      DenseMatrix::FromRows({
          {0.62, 0.24, 0.001, 0.14},
          {0.24, 0.06, 0.55, 0.16},
          {0.001, 0.55, 0.001, 0.45},
          {0.14, 0.16, 0.45, 0.25},
      })));

  // Prop-37 [Smith et al. 2013]: Twitter users / tweets / words.
  specs.push_back(MakeSpec(
      "Prop-37", 62383, 2167809,
      {0.30, 0.50, 0.20},
      DenseMatrix::FromRows({
          {0.35, 0.26, 0.38},
          {0.26, 0.12, 0.61},
          {0.38, 0.61, 0.001},
      })));

  // Pokec-Gender [Takac & Zabovsky 2012]: two genders, mild heterophily
  // (more interaction across genders than within).
  specs.push_back(MakeSpec(
      "Pokec-Gender", 1632803, 30622564,
      {0.50, 0.50},
      DenseMatrix::FromRows({
          {0.44, 0.56},
          {0.56, 0.44},
      })));

  // Flickr [McAuley & Leskovec 2012]: users / pictures / groups.
  specs.push_back(MakeSpec(
      "Flickr", 2007369, 18147504,
      {0.30, 0.60, 0.10},
      DenseMatrix::FromRows({
          {0.17, 0.32, 0.51},
          {0.32, 0.19, 0.49},
          {0.51, 0.49, 0.001},
      })));

  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& RealWorldDatasetSpecs() {
  static const std::vector<DatasetSpec>& specs =
      *new std::vector<DatasetSpec>(BuildSpecs());
  return specs;
}

Result<DatasetSpec> FindDatasetSpec(const std::string& name) {
  for (const DatasetSpec& spec : RealWorldDatasetSpecs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no dataset spec named '" + name + "'");
}

Result<PlantedGraph> GenerateDatasetMimic(const DatasetSpec& spec,
                                          double scale, Rng& rng) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  PlantedGraphConfig config;
  config.num_nodes = std::max<std::int64_t>(
      200, static_cast<std::int64_t>(
               std::llround(scale * static_cast<double>(spec.num_nodes))));
  const double edge_ratio =
      static_cast<double>(spec.num_edges) / static_cast<double>(spec.num_nodes);
  config.num_edges = static_cast<std::int64_t>(
      std::llround(edge_ratio * static_cast<double>(config.num_nodes)));
  config.class_fractions = spec.class_fractions;
  config.compatibility = spec.gold_compatibility;
  config.degree_distribution = DegreeDistribution::kPowerLaw;
  return GeneratePlantedGraph(config, rng);
}

}  // namespace fgr
