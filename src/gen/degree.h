// Degree-sequence generation for the synthetic graph generator.
//
// The paper's generator "actively controls the degree distributions" instead
// of only fixing expectations. We generate an integer degree sequence whose
// total equals exactly 2m (largest-remainder rounding) from either a uniform
// profile or the paper's power-law profile with coefficient 0.3.

#ifndef FGR_GEN_DEGREE_H_
#define FGR_GEN_DEGREE_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace fgr {

enum class DegreeDistribution {
  kUniform,   // every node as close to 2m/n as integrality allows
  kPowerLaw,  // d_i ∝ (i+1)^-exponent, shuffled across nodes
};

// Returns n degrees summing to exactly 2·num_edges, each ≥ 1 when
// 2·num_edges ≥ n. The sequence is randomly permuted so degree and class
// assignments are independent.
std::vector<std::int64_t> MakeDegreeSequence(std::int64_t num_nodes,
                                             std::int64_t num_edges,
                                             DegreeDistribution distribution,
                                             double power_exponent, Rng& rng);

}  // namespace fgr

#endif  // FGR_GEN_DEGREE_H_
