#include "gen/sinkhorn.h"

#include <cmath>

#include "util/check.h"

namespace fgr {

Result<DenseMatrix> FitSymmetricMarginals(const DenseMatrix& kernel,
                                          const std::vector<double>& targets,
                                          const SinkhornOptions& options) {
  const std::int64_t k = kernel.rows();
  if (kernel.cols() != k) {
    return Status::InvalidArgument("kernel must be square");
  }
  if (static_cast<std::int64_t>(targets.size()) != k) {
    return Status::InvalidArgument("targets size must match kernel");
  }
  for (std::int64_t i = 0; i < k; ++i) {
    if (targets[static_cast<std::size_t>(i)] < 0.0) {
      return Status::InvalidArgument("targets must be non-negative");
    }
    for (std::int64_t j = 0; j < k; ++j) {
      if (kernel(i, j) < 0.0) {
        return Status::InvalidArgument("kernel entries must be non-negative");
      }
      if (std::fabs(kernel(i, j) - kernel(j, i)) > 1e-9) {
        return Status::InvalidArgument("kernel must be symmetric");
      }
    }
  }

  // u_i = 0 for empty classes; positive init elsewhere.
  std::vector<double> u(static_cast<std::size_t>(k), 0.0);
  for (std::int64_t i = 0; i < k; ++i) {
    if (targets[static_cast<std::size_t>(i)] > 0.0) {
      double row_mass = 0.0;
      for (std::int64_t j = 0; j < k; ++j) row_mass += kernel(i, j);
      if (row_mass <= 0.0) {
        return Status::FailedPrecondition(
            "class " + std::to_string(i) +
            " has positive target but an all-zero kernel row");
      }
      u[static_cast<std::size_t>(i)] =
          std::sqrt(targets[static_cast<std::size_t>(i)] / row_mass);
    }
  }

  // Damped fixed point: u_i ← sqrt(u_i · t_i / (K u)_i). The square root
  // damping makes the symmetric iteration monotone instead of oscillating.
  std::vector<double> ku(static_cast<std::size_t>(k), 0.0);
  double error = 0.0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (std::int64_t i = 0; i < k; ++i) {
      double sum = 0.0;
      for (std::int64_t j = 0; j < k; ++j) {
        sum += kernel(i, j) * u[static_cast<std::size_t>(j)];
      }
      ku[static_cast<std::size_t>(i)] = sum;
    }
    error = 0.0;
    for (std::int64_t i = 0; i < k; ++i) {
      const double target = targets[static_cast<std::size_t>(i)];
      if (target <= 0.0) continue;
      const double row_sum = u[static_cast<std::size_t>(i)] *
                             ku[static_cast<std::size_t>(i)];
      if (row_sum <= 0.0) {
        return Status::FailedPrecondition(
            "marginal fitting degenerated for class " + std::to_string(i));
      }
      error = std::max(error, std::fabs(row_sum - target) / target);
      u[static_cast<std::size_t>(i)] *= std::sqrt(target / row_sum);
    }
    if (error <= options.tolerance) break;
  }

  DenseMatrix fitted(k, k);
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      fitted(i, j) = u[static_cast<std::size_t>(i)] * kernel(i, j) *
                     u[static_cast<std::size_t>(j)];
    }
  }
  return fitted;
}

Result<DenseMatrix> SinkhornNormalize(const DenseMatrix& matrix,
                                      const SinkhornOptions& options) {
  return FitSymmetricMarginals(
      matrix, std::vector<double>(static_cast<std::size_t>(matrix.rows()), 1.0),
      options);
}

}  // namespace fgr
