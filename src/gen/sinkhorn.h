// Symmetric iterative proportional fitting (Sinkhorn scaling).
//
// The planted-compatibility generator must turn a desired compatibility
// pattern H into an edge-endpoint count matrix M whose row sums match each
// class's stub budget (Σ of its node degrees). We find the symmetric matrix
//   M = diag(u) · K · diag(u)
// with prescribed row sums by fixed-point iteration on u. For balanced
// classes this reduces to a plain scaling of K, so the measured neighbor
// statistics equal H exactly; for imbalanced classes it is the closest
// H-patterned symmetric matrix consistent with the marginals.

#ifndef FGR_GEN_SINKHORN_H_
#define FGR_GEN_SINKHORN_H_

#include <vector>

#include "matrix/dense.h"
#include "util/status.h"

namespace fgr {

struct SinkhornOptions {
  int max_iterations = 500;
  double tolerance = 1e-10;  // max relative row-sum error
};

// Returns symmetric M = diag(u)·kernel·diag(u) with row sums ≈ targets.
// Requirements: kernel symmetric with non-negative entries; targets
// non-negative; every class with a positive target must have a positive
// kernel row. Classes with target 0 get a zero row/column.
Result<DenseMatrix> FitSymmetricMarginals(const DenseMatrix& kernel,
                                          const std::vector<double>& targets,
                                          const SinkhornOptions& options = {});

// Projects a non-negative symmetric matrix onto (approximately) doubly
// stochastic form by Sinkhorn scaling with unit targets. Used to clean up
// hand-entered compatibility matrices (e.g. the paper's Fig. 13 tables,
// which are rounded to two decimals).
Result<DenseMatrix> SinkhornNormalize(const DenseMatrix& matrix,
                                      const SinkhornOptions& options = {});

}  // namespace fgr

#endif  // FGR_GEN_SINKHORN_H_
