#include "gen/planted.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <utility>

#include "core/compatibility.h"
#include "gen/sinkhorn.h"
#include "util/check.h"

namespace fgr {
namespace {

// Largest-remainder rounding of class fractions to integer class sizes.
std::vector<std::int64_t> ClassSizes(const std::vector<double>& fractions,
                                     std::int64_t num_nodes) {
  const std::size_t k = fractions.size();
  std::vector<std::int64_t> sizes(k, 0);
  std::vector<std::pair<double, std::size_t>> remainders(k);
  std::int64_t assigned = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double exact = fractions[c] * static_cast<double>(num_nodes);
    sizes[c] = static_cast<std::int64_t>(std::floor(exact));
    remainders[c] = {exact - std::floor(exact), c};
    assigned += sizes[c];
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < num_nodes; ++i, ++assigned) {
    sizes[remainders[i % k].second] += 1;
  }
  return sizes;
}

}  // namespace

PlantedGraphConfig MakeSkewConfig(std::int64_t num_nodes, double avg_degree,
                                  std::int64_t num_classes, double skew,
                                  DegreeDistribution distribution) {
  PlantedGraphConfig config;
  config.num_nodes = num_nodes;
  config.num_edges = static_cast<std::int64_t>(
      std::llround(avg_degree * static_cast<double>(num_nodes) / 2.0));
  config.class_fractions.assign(static_cast<std::size_t>(num_classes),
                                1.0 / static_cast<double>(num_classes));
  config.compatibility = MakeSkewCompatibility(num_classes, skew);
  config.degree_distribution = distribution;
  return config;
}

Result<PlantedGraph> GeneratePlantedGraph(const PlantedGraphConfig& config,
                                          Rng& rng) {
  const std::int64_t n = config.num_nodes;
  const std::int64_t k = config.compatibility.rows();
  if (n <= 0) return Status::InvalidArgument("num_nodes must be positive");
  if (config.num_edges < 0) {
    return Status::InvalidArgument("num_edges must be non-negative");
  }
  if (config.compatibility.cols() != k || k == 0) {
    return Status::InvalidArgument("compatibility matrix must be square");
  }
  if (static_cast<std::int64_t>(config.class_fractions.size()) != k) {
    return Status::InvalidArgument(
        "class_fractions size must match compatibility matrix");
  }
  double fraction_sum = 0.0;
  for (double fraction : config.class_fractions) {
    if (fraction < 0.0) {
      return Status::InvalidArgument("class fractions must be non-negative");
    }
    fraction_sum += fraction;
  }
  if (std::fabs(fraction_sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("class fractions must sum to 1, got " +
                                   std::to_string(fraction_sum));
  }
  if (!IsSymmetric(config.compatibility, 1e-9)) {
    return Status::InvalidArgument("compatibility matrix must be symmetric");
  }

  // 1. Node classes: contiguous blocks sized by largest-remainder rounding.
  const std::vector<std::int64_t> sizes = ClassSizes(config.class_fractions, n);
  Labeling labels(n, static_cast<ClassId>(k));
  {
    NodeId node = 0;
    for (std::int64_t c = 0; c < k; ++c) {
      for (std::int64_t i = 0; i < sizes[static_cast<std::size_t>(c)]; ++i) {
        labels.set_label(node++, static_cast<ClassId>(c));
      }
    }
  }

  // 2. Degree sequence with exactly 2m stubs, randomly assigned to nodes.
  const std::vector<std::int64_t> degrees =
      MakeDegreeSequence(n, config.num_edges, config.degree_distribution,
                         config.power_exponent, rng);

  // 3. Per-class stub budgets.
  std::vector<double> stub_budget(static_cast<std::size_t>(k), 0.0);
  for (NodeId i = 0; i < n; ++i) {
    stub_budget[static_cast<std::size_t>(labels.label(i))] +=
        static_cast<double>(degrees[static_cast<std::size_t>(i)]);
  }

  // 4. Fit the symmetric endpoint-count matrix M to the budgets with the
  //    compatibility pattern as kernel.
  Result<DenseMatrix> fitted =
      FitSymmetricMarginals(config.compatibility, stub_budget);
  if (!fitted.ok()) return fitted.status();
  const DenseMatrix& target = fitted.value();

  // 5. Integer edge counts per class pair: edges(c,d) for c<d is M_cd
  //    rounded; edges(c,c) is M_cc/2 rounded. Consumption may fall slightly
  //    short of the stub budgets; the leftover stubs are discarded, which
  //    only perturbs m at the O(k²) level.
  DenseMatrix edge_counts(k, k);
  for (std::int64_t c = 0; c < k; ++c) {
    for (std::int64_t d = c; d < k; ++d) {
      const double exact = c == d ? target(c, c) / 2.0 : target(c, d);
      edge_counts(c, d) = std::floor(exact + 0.5);
    }
  }

  // 6. Per-class stub lists (node repeated degree times), shuffled.
  std::vector<std::vector<NodeId>> stubs(static_cast<std::size_t>(k));
  for (std::int64_t c = 0; c < k; ++c) {
    stubs[static_cast<std::size_t>(c)].reserve(
        static_cast<std::size_t>(stub_budget[static_cast<std::size_t>(c)]));
  }
  for (NodeId i = 0; i < n; ++i) {
    auto& bucket = stubs[static_cast<std::size_t>(labels.label(i))];
    for (std::int64_t s = 0; s < degrees[static_cast<std::size_t>(i)]; ++s) {
      bucket.push_back(i);
    }
  }
  for (auto& bucket : stubs) rng.Shuffle(bucket);

  // 7. Wire edges by consuming stubs pair-by-pair. Cursors track how much of
  //    each class's list is consumed across class pairs.
  std::vector<std::size_t> cursor(static_cast<std::size_t>(k), 0);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(config.num_edges));
  for (std::int64_t c = 0; c < k; ++c) {
    auto& c_stubs = stubs[static_cast<std::size_t>(c)];
    for (std::int64_t d = c; d < k; ++d) {
      auto& d_stubs = stubs[static_cast<std::size_t>(d)];
      const auto count =
          static_cast<std::int64_t>(edge_counts(c, d));
      for (std::int64_t e = 0; e < count; ++e) {
        if (cursor[static_cast<std::size_t>(c)] >= c_stubs.size()) break;
        const NodeId u = c_stubs[cursor[static_cast<std::size_t>(c)]++];
        if (cursor[static_cast<std::size_t>(d)] >= d_stubs.size()) break;
        NodeId v = d_stubs[cursor[static_cast<std::size_t>(d)]];
        if (u == v) {
          // Self-pair: swap the partner stub with a random later one.
          const std::size_t remaining =
              d_stubs.size() - cursor[static_cast<std::size_t>(d)];
          bool fixed = false;
          for (int attempt = 0; attempt < 8 && remaining > 1; ++attempt) {
            const std::size_t swap_with =
                cursor[static_cast<std::size_t>(d)] + 1 +
                static_cast<std::size_t>(
                    rng.UniformInt(static_cast<std::int64_t>(remaining - 1)));
            if (d_stubs[swap_with] != u) {
              std::swap(d_stubs[cursor[static_cast<std::size_t>(d)]],
                        d_stubs[swap_with]);
              v = d_stubs[cursor[static_cast<std::size_t>(d)]];
              fixed = true;
              break;
            }
          }
          if (!fixed) {
            ++cursor[static_cast<std::size_t>(d)];  // discard the pair
            continue;
          }
        }
        ++cursor[static_cast<std::size_t>(d)];
        edges.push_back({u, v});
      }
    }
  }

  // 8. Assemble (duplicate edges collapse inside FromEdges).
  Result<Graph> graph = Graph::FromEdges(n, edges);
  if (!graph.ok()) return graph.status();

  PlantedGraph result;
  result.graph = std::move(graph).value();
  result.labels = std::move(labels);
  result.target_statistics = target;
  return result;
}

}  // namespace fgr
