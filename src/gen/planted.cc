#include "gen/planted.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <utility>

#include "core/compatibility.h"
#include "gen/sinkhorn.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/shuffle.h"

namespace fgr {
namespace {

// Largest-remainder rounding of class fractions to integer class sizes.
std::vector<std::int64_t> ClassSizes(const std::vector<double>& fractions,
                                     std::int64_t num_nodes) {
  const std::size_t k = fractions.size();
  std::vector<std::int64_t> sizes(k, 0);
  std::vector<std::pair<double, std::size_t>> remainders(k);
  std::int64_t assigned = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double exact = fractions[c] * static_cast<double>(num_nodes);
    sizes[c] = static_cast<std::int64_t>(std::floor(exact));
    remainders[c] = {exact - std::floor(exact), c};
    assigned += sizes[c];
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < num_nodes; ++i, ++assigned) {
    sizes[remainders[i % k].second] += 1;
  }
  return sizes;
}

}  // namespace

PlantedGraphConfig MakeSkewConfig(std::int64_t num_nodes, double avg_degree,
                                  std::int64_t num_classes, double skew,
                                  DegreeDistribution distribution) {
  PlantedGraphConfig config;
  config.num_nodes = num_nodes;
  config.num_edges = static_cast<std::int64_t>(
      std::llround(avg_degree * static_cast<double>(num_nodes) / 2.0));
  config.class_fractions.assign(static_cast<std::size_t>(num_classes),
                                1.0 / static_cast<double>(num_classes));
  config.compatibility = MakeSkewCompatibility(num_classes, skew);
  config.degree_distribution = distribution;
  return config;
}

Result<PlantedGraph> GeneratePlantedGraph(const PlantedGraphConfig& config,
                                          Rng& rng) {
  const std::int64_t n = config.num_nodes;
  const std::int64_t k = config.compatibility.rows();
  if (n <= 0) return Status::InvalidArgument("num_nodes must be positive");
  if (config.num_edges < 0) {
    return Status::InvalidArgument("num_edges must be non-negative");
  }
  if (config.compatibility.cols() != k || k == 0) {
    return Status::InvalidArgument("compatibility matrix must be square");
  }
  if (static_cast<std::int64_t>(config.class_fractions.size()) != k) {
    return Status::InvalidArgument(
        "class_fractions size must match compatibility matrix");
  }
  double fraction_sum = 0.0;
  for (double fraction : config.class_fractions) {
    if (fraction < 0.0) {
      return Status::InvalidArgument("class fractions must be non-negative");
    }
    fraction_sum += fraction;
  }
  if (std::fabs(fraction_sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("class fractions must sum to 1, got " +
                                   std::to_string(fraction_sum));
  }
  if (!IsSymmetric(config.compatibility, 1e-9)) {
    return Status::InvalidArgument("compatibility matrix must be symmetric");
  }

  // 1. Node classes: contiguous blocks sized by largest-remainder rounding.
  const std::vector<std::int64_t> sizes = ClassSizes(config.class_fractions, n);
  Labeling labels(n, static_cast<ClassId>(k));
  {
    NodeId node = 0;
    for (std::int64_t c = 0; c < k; ++c) {
      for (std::int64_t i = 0; i < sizes[static_cast<std::size_t>(c)]; ++i) {
        labels.set_label(node++, static_cast<ClassId>(c));
      }
    }
  }

  // 2. Degree sequence with exactly 2m stubs, randomly assigned to nodes.
  const std::vector<std::int64_t> degrees =
      MakeDegreeSequence(n, config.num_edges, config.degree_distribution,
                         config.power_exponent, rng);

  // 3. Per-class stub budgets.
  std::vector<double> stub_budget(static_cast<std::size_t>(k), 0.0);
  for (NodeId i = 0; i < n; ++i) {
    stub_budget[static_cast<std::size_t>(labels.label(i))] +=
        static_cast<double>(degrees[static_cast<std::size_t>(i)]);
  }

  // 4. Fit the symmetric endpoint-count matrix M to the budgets with the
  //    compatibility pattern as kernel.
  Result<DenseMatrix> fitted =
      FitSymmetricMarginals(config.compatibility, stub_budget);
  if (!fitted.ok()) return fitted.status();
  const DenseMatrix& target = fitted.value();

  // 5. Integer edge counts per class pair: edges(c,d) for c<d is M_cd
  //    rounded; edges(c,c) is M_cc/2 rounded. Consumption may fall slightly
  //    short of the stub budgets; the leftover stubs are discarded, which
  //    only perturbs m at the O(k²) level.
  DenseMatrix edge_counts(k, k);
  for (std::int64_t c = 0; c < k; ++c) {
    for (std::int64_t d = c; d < k; ++d) {
      const double exact = c == d ? target(c, c) / 2.0 : target(c, d);
      edge_counts(c, d) = std::floor(exact + 0.5);
    }
  }

  // 6. Per-class stub lists (node repeated degree times). Classes occupy
  //    contiguous node blocks, so each node's slot range inside its class
  //    bucket follows from a degree prefix sum; the fill is then
  //    node-parallel. Each bucket is shuffled with the thread-count-
  //    invariant DeterministicShuffle (seeded from the caller's Rng), which
  //    keeps generation reproducible from the seed on any machine.
  std::vector<NodeId> class_start(static_cast<std::size_t>(k) + 1, 0);
  for (std::int64_t c = 0; c < k; ++c) {
    class_start[static_cast<std::size_t>(c) + 1] =
        class_start[static_cast<std::size_t>(c)] +
        sizes[static_cast<std::size_t>(c)];
  }
  std::vector<std::int64_t> stub_offset(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    const bool class_boundary =
        i == class_start[static_cast<std::size_t>(labels.label(i))];
    stub_offset[static_cast<std::size_t>(i) + 1] =
        (class_boundary ? 0 : stub_offset[static_cast<std::size_t>(i)]) +
        degrees[static_cast<std::size_t>(i)];
  }
  std::vector<std::vector<NodeId>> stubs(static_cast<std::size_t>(k));
  std::vector<std::uint64_t> shuffle_seed(static_cast<std::size_t>(k));
  for (std::int64_t c = 0; c < k; ++c) {
    stubs[static_cast<std::size_t>(c)].resize(
        static_cast<std::size_t>(stub_budget[static_cast<std::size_t>(c)]));
    shuffle_seed[static_cast<std::size_t>(c)] = rng.Next();
  }
  ParallelFor(
      0, n,
      [&](NodeId i) {
        auto& bucket = stubs[static_cast<std::size_t>(labels.label(i))];
        const std::int64_t offset =
            stub_offset[static_cast<std::size_t>(i) + 1] -
            degrees[static_cast<std::size_t>(i)];
        for (std::int64_t s = 0; s < degrees[static_cast<std::size_t>(i)];
             ++s) {
          bucket[static_cast<std::size_t>(offset + s)] = i;
        }
      },
      /*grain=*/2048);
  for (std::int64_t c = 0; c < k; ++c) {
    DeterministicShuffle(stubs[static_cast<std::size_t>(c)],
                         shuffle_seed[static_cast<std::size_t>(c)]);
  }

  // 7. Wire edges by consuming the shuffled stub lists pair-by-pair. With
  //    the lists fixed, each class pair's slice of its lists is known up
  //    front (a diagonal pair consumes two stubs per edge, an off-diagonal
  //    pair one from each class), so the wiring is edge-parallel. A
  //    diagonal pair can draw the same node for both endpoints; those
  //    self-pairs are dropped rather than repaired in place, which only
  //    costs O(Σ (dᵢ/L)²·m) edges — the same order as the duplicate
  //    collapse — and keeps the wiring free of cross-edge data flow.
  struct PairPlan {
    std::int64_t c = 0;
    std::int64_t d = 0;
    std::int64_t start_c = 0;  // first stub consumed from class c
    std::int64_t start_d = 0;  // first stub consumed from class d
    std::int64_t take = 0;     // edges attempted
    std::int64_t base = 0;     // slot range [base, base + take) in `edges`
  };
  std::vector<std::int64_t> cursor(static_cast<std::size_t>(k), 0);
  std::vector<PairPlan> plans;
  std::int64_t total_slots = 0;
  for (std::int64_t c = 0; c < k; ++c) {
    const auto c_size = static_cast<std::int64_t>(
        stubs[static_cast<std::size_t>(c)].size());
    for (std::int64_t d = c; d < k; ++d) {
      const auto count = static_cast<std::int64_t>(edge_counts(c, d));
      PairPlan plan;
      plan.c = c;
      plan.d = d;
      plan.start_c = cursor[static_cast<std::size_t>(c)];
      if (c == d) {
        plan.take = std::min(
            count, (c_size - cursor[static_cast<std::size_t>(c)]) / 2);
        plan.start_d = plan.start_c + 1;
        cursor[static_cast<std::size_t>(c)] += 2 * plan.take;
      } else {
        const auto d_size = static_cast<std::int64_t>(
            stubs[static_cast<std::size_t>(d)].size());
        plan.take = std::min(
            {count, c_size - cursor[static_cast<std::size_t>(c)],
             d_size - cursor[static_cast<std::size_t>(d)]});
        plan.start_d = cursor[static_cast<std::size_t>(d)];
        cursor[static_cast<std::size_t>(c)] += plan.take;
        cursor[static_cast<std::size_t>(d)] += plan.take;
      }
      if (plan.take <= 0) continue;
      plan.base = total_slots;
      total_slots += plan.take;
      plans.push_back(plan);
    }
  }
  std::vector<Edge> edges(static_cast<std::size_t>(total_slots));
  for (const PairPlan& plan : plans) {
    const auto& c_stubs = stubs[static_cast<std::size_t>(plan.c)];
    const auto& d_stubs = stubs[static_cast<std::size_t>(plan.d)];
    const std::int64_t stride = plan.c == plan.d ? 2 : 1;
    ParallelFor(
        0, plan.take,
        [&](std::int64_t e) {
          const NodeId u =
              c_stubs[static_cast<std::size_t>(plan.start_c + stride * e)];
          const NodeId v =
              d_stubs[static_cast<std::size_t>(plan.start_d + stride * e)];
          // Dropped self-pairs become sentinels, compacted below.
          edges[static_cast<std::size_t>(plan.base + e)] =
              u == v ? Edge{-1, -1} : Edge{u, v};
        },
        /*grain=*/4096);
  }
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const Edge& e) { return e.u < 0; }),
              edges.end());

  // 8. Assemble (duplicate edges collapse inside FromEdges).
  Result<Graph> graph = Graph::FromEdges(n, edges);
  if (!graph.ok()) return graph.status();

  PlantedGraph result;
  result.graph = std::move(graph).value();
  result.labels = std::move(labels);
  result.target_statistics = target;
  return result;
}

}  // namespace fgr
