#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace fgr {
namespace internal {

void CheckFailed(const char* file, int line, const char* cond,
                 const std::string& message) {
  std::fprintf(stderr, "FGR_CHECK failed at %s:%d: %s", file, line, cond);
  if (!message.empty()) {
    std::fprintf(stderr, " — %s", message.c_str());
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace fgr
