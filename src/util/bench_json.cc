#include "util/bench_json.h"

#include <unistd.h>

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <utility>

#include "serve/protocol.h"
#include "util/env.h"
#include "util/parallel.h"

namespace fgr {
namespace {

std::string HostName() {
  char buffer[256] = {};
  if (gethostname(buffer, sizeof(buffer) - 1) != 0) return "unknown";
  return buffer;
}

std::string UtcTimestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm utc = {};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

void WriteCase(JsonWriter& writer, const BenchCaseJson& c) {
  writer.BeginObject();
  writer.Key("name").Value(c.name);
  writer.Key("title").Value(c.title);
  writer.Key("wall_seconds").Value(c.wall_seconds);
  writer.Key("cpu_seconds").Value(c.cpu_seconds);
  writer.Key("columns").BeginArray();
  for (const std::string& column : c.columns) writer.Value(column);
  writer.EndArray();
  writer.Key("rows").BeginArray();
  for (const auto& row : c.rows) {
    writer.BeginArray();
    for (const std::string& cell : row) writer.Value(cell);
    writer.EndArray();
  }
  writer.EndArray();
  writer.EndObject();
}

Result<std::vector<std::string>> ParseStringArray(const Json& value,
                                                  const char* what) {
  if (value.type() != Json::Type::kArray) {
    return Status::InvalidArgument(std::string(what) + " must be an array");
  }
  std::vector<std::string> out;
  out.reserve(value.items().size());
  for (const Json& item : value.items()) {
    if (item.type() != Json::Type::kString) {
      return Status::InvalidArgument(std::string(what) +
                                     " entries must be strings");
    }
    out.push_back(item.string_value());
  }
  return out;
}

Result<BenchCaseJson> ParseCase(const Json& json) {
  if (json.type() != Json::Type::kObject) {
    return Status::InvalidArgument("bench case must be an object");
  }
  BenchCaseJson c;
  c.name = json.GetString("name", "");
  c.title = json.GetString("title", "");
  c.wall_seconds = json.GetNumber("wall_seconds", 0.0);
  c.cpu_seconds = json.GetNumber("cpu_seconds", 0.0);
  const Json* columns = json.Find("columns");
  if (columns == nullptr) {
    return Status::InvalidArgument("bench case is missing \"columns\"");
  }
  auto parsed_columns = ParseStringArray(*columns, "\"columns\"");
  if (!parsed_columns.ok()) return parsed_columns.status();
  c.columns = std::move(parsed_columns).value();
  const Json* rows = json.Find("rows");
  if (rows == nullptr || rows->type() != Json::Type::kArray) {
    return Status::InvalidArgument("bench case is missing a \"rows\" array");
  }
  for (const Json& row : rows->items()) {
    auto parsed_row = ParseStringArray(row, "\"rows\" entry");
    if (!parsed_row.ok()) return parsed_row.status();
    if (parsed_row.value().size() != c.columns.size()) {
      return Status::InvalidArgument(
          "bench case row width does not match its columns");
    }
    c.rows.push_back(std::move(parsed_row).value());
  }
  return c;
}

}  // namespace

BenchRunJson MakeBenchRun(const std::string& bench_name) {
  BenchRunJson run;
  run.bench = bench_name;
  run.git_sha = EnvString("FGR_GIT_SHA", "unknown");
  run.hostname = HostName();
  run.timestamp_utc = UtcTimestamp();
  run.data_dir = EnvString("FGR_DATA_DIR", "");
  run.threads = NumThreads();
  run.trials = static_cast<int>(EnvInt64("FGR_TRIALS", 3));
  run.scale = EnvDouble("FGR_SCALE", 1.0);
  run.full_scale = EnvInt64("FGR_FULL", 0) != 0;
  return run;
}

void AddBenchCase(BenchRunJson& run, const Table& table,
                  const std::string& name, const std::string& title,
                  double wall_seconds, double cpu_seconds) {
  BenchCaseJson c;
  c.name = name;
  c.title = title;
  c.columns = table.columns();
  c.rows = table.rows();
  c.wall_seconds = wall_seconds;
  c.cpu_seconds = cpu_seconds;
  run.cases.push_back(std::move(c));
}

std::string BenchRunToJson(const BenchRunJson& run) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema_version").Value(run.schema_version);
  writer.Key("bench").Value(run.bench);
  writer.Key("git_sha").Value(run.git_sha);
  writer.Key("hostname").Value(run.hostname);
  writer.Key("timestamp_utc").Value(run.timestamp_utc);
  writer.Key("data_dir").Value(run.data_dir);
  writer.Key("threads").Value(run.threads);
  writer.Key("trials").Value(run.trials);
  writer.Key("scale").Value(run.scale);
  writer.Key("full_scale").Value(run.full_scale);
  writer.Key("cases").BeginArray();
  for (const BenchCaseJson& c : run.cases) WriteCase(writer, c);
  writer.EndArray();
  writer.EndObject();
  return writer.Take();
}

Result<BenchRunJson> ParseBenchRunJson(const std::string& text) {
  auto parsed = ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  const Json& json = parsed.value();
  if (json.type() != Json::Type::kObject) {
    return Status::InvalidArgument("bench run must be a JSON object");
  }
  BenchRunJson run;
  run.schema_version =
      static_cast<int>(json.GetInt("schema_version", -1));
  if (run.schema_version != kBenchJsonSchemaVersion) {
    return Status::InvalidArgument(
        "unsupported bench JSON schema_version " +
        std::to_string(run.schema_version) + " (expected " +
        std::to_string(kBenchJsonSchemaVersion) + ")");
  }
  run.bench = json.GetString("bench", "");
  run.git_sha = json.GetString("git_sha", "unknown");
  run.hostname = json.GetString("hostname", "unknown");
  run.timestamp_utc = json.GetString("timestamp_utc", "");
  run.data_dir = json.GetString("data_dir", "");
  run.threads = static_cast<int>(json.GetInt("threads", 1));
  run.trials = static_cast<int>(json.GetInt("trials", 0));
  run.scale = json.GetNumber("scale", 1.0);
  const Json* full = json.Find("full_scale");
  run.full_scale = full != nullptr && full->type() == Json::Type::kBool &&
                   full->bool_value();
  const Json* cases = json.Find("cases");
  if (cases == nullptr || cases->type() != Json::Type::kArray) {
    return Status::InvalidArgument("bench run is missing a \"cases\" array");
  }
  for (const Json& item : cases->items()) {
    auto parsed_case = ParseCase(item);
    if (!parsed_case.ok()) return parsed_case.status();
    run.cases.push_back(std::move(parsed_case).value());
  }
  return run;
}

Status WriteBenchRunJson(const BenchRunJson& run, const std::string& path) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open " + temp + " for writing");
    }
    out << BenchRunToJson(run) << "\n";
    if (!out.flush()) {
      return Status::Internal("short write to " + temp);
    }
  }
  std::error_code error;
  std::filesystem::rename(temp, path, error);
  if (error) {
    return Status::Internal("rename " + temp + " -> " + path + ": " +
                            error.message());
  }
  return Status::Ok();
}

}  // namespace fgr
