// 64-byte-aligned STL allocator.
//
// DenseMatrix stores its buffer in a std::vector with this allocator so
// row 0 starts on a cache-line (and full AVX-512 vector) boundary; paired
// with an optional padded row stride that keeps every row's start aligned,
// the SIMD kernels can use aligned loads opportunistically and never split
// a row across an extra cache line. The allocator only changes where the
// memory comes from — vector semantics (copy, compare, data(), size())
// are untouched.

#ifndef FGR_UTIL_ALIGNED_H_
#define FGR_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>

namespace fgr {

template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

}  // namespace fgr

#endif  // FGR_UTIL_ALIGNED_H_
