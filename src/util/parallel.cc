#include "util/parallel.h"

#include <algorithm>
#include <atomic>

#include "util/env.h"

#ifdef FGR_WITH_OPENMP
#include <omp.h>
#endif

namespace fgr {
namespace {

// 0 = automatic (FGR_NUM_THREADS env var, else hardware threads).
std::atomic<int> g_configured_threads{0};

// Generous upper bound so a typo'd env value cannot fork-bomb the process.
constexpr int kMaxThreads = 1024;

}  // namespace

bool ParallelismEnabled() {
#ifdef FGR_WITH_OPENMP
  return true;
#else
  return false;
#endif
}

void SetNumThreads(int threads) {
  FGR_CHECK_GE(threads, 0);
  g_configured_threads.store(std::min(threads, kMaxThreads),
                             std::memory_order_relaxed);
}

int NumThreads() {
#ifdef FGR_WITH_OPENMP
  const int configured = g_configured_threads.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  const std::int64_t env = EnvInt64("FGR_NUM_THREADS", 0);
  if (env > 0) {
    return static_cast<int>(std::min<std::int64_t>(env, kMaxThreads));
  }
  return std::max(1, omp_get_num_procs());
#else
  return 1;
#endif
}

std::vector<std::int64_t> ShardByWeight(const std::vector<std::int64_t>& prefix,
                                        int shards) {
  FGR_CHECK_GE(prefix.size(), 1u);
  return ShardByWeight(prefix.data(),
                       static_cast<std::int64_t>(prefix.size()) - 1, shards);
}

std::vector<std::int64_t> ShardByWeight(const std::int64_t* prefix,
                                        std::int64_t rows, int shards) {
  FGR_CHECK_GE(shards, 1);
  FGR_CHECK_GE(rows, 0);
  std::vector<std::int64_t> boundaries;
  boundaries.push_back(0);
  if (rows <= 0) return boundaries;
  const std::int64_t base = prefix[0];
  const std::int64_t total = prefix[rows] - base;
  for (int s = 1; s < shards; ++s) {
    // First row whose cumulative weight reaches the s-th equal-weight
    // target; empty shards collapse (duplicate boundaries are skipped).
    const std::int64_t target =
        base + total / shards * s + total % shards * s / shards;
    const auto it = std::lower_bound(prefix, prefix + rows + 1, target);
    const std::int64_t row = std::min<std::int64_t>(rows, it - prefix);
    if (row > boundaries.back()) boundaries.push_back(row);
  }
  if (boundaries.back() < rows) boundaries.push_back(rows);
  return boundaries;
}

namespace internal {

int ResolveWorkers(std::int64_t iterations, std::int64_t grain) {
  if (iterations <= 0 || !ParallelismEnabled()) return 1;
  if (grain < 1) grain = 1;
  const std::int64_t grain_cap = (iterations + grain - 1) / grain;
  return static_cast<int>(std::min<std::int64_t>(
      NumThreads(), std::max<std::int64_t>(1, grain_cap)));
}

void ExceptionCollector::Rethrow() {
  if (first_) std::rethrow_exception(first_);
}

void ExceptionCollector::Capture(std::exception_ptr exception) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!first_) first_ = std::move(exception);
}

}  // namespace internal
}  // namespace fgr
