// Thread-count-invariant parallel shuffle.
//
// The planted-graph generator needs to permute stub lists with up to 2m
// entries (61M for the full Pokec mimic); a serial Fisher-Yates walk over
// an Rng dominates generation time and cannot be parallelized without
// changing its output. DeterministicShuffle instead sorts the elements by
// counter-based pseudo-random keys (SplitMix64 of seed + index): the result
// depends only on (values, seed), never on the worker count, so generated
// graphs are identical whether the library runs on 1 thread or 64.
//
// The sort is a bucket sort on the key's top bits (buckets are balanced
// because the keys are uniform) with per-bucket std::sort, both phases
// parallelized over the ParallelFor backend. Ties — adjacent duplicate keys
// are ~n²/2⁶⁴ rare but must not introduce nondeterminism — are broken by
// original index.

#ifndef FGR_UTIL_SHUFFLE_H_
#define FGR_UTIL_SHUFFLE_H_

#include <cstdint>
#include <vector>

#include "util/parallel.h"

namespace fgr {

// The permutation DeterministicShuffle applies: result[i] is the original
// index of the element that ends up at position i. Depends only on
// (size, seed). Exposed so callers can permute several parallel arrays
// consistently.
std::vector<std::int64_t> ShufflePermutation(std::int64_t size,
                                             std::uint64_t seed);

// Uniformly shuffles `values` in place, deterministically in (values, seed)
// and independent of the thread count.
template <typename T>
void DeterministicShuffle(std::vector<T>& values, std::uint64_t seed) {
  if (values.size() < 2) return;
  const std::vector<std::int64_t> perm =
      ShufflePermutation(static_cast<std::int64_t>(values.size()), seed);
  std::vector<T> shuffled(values.size());
  ParallelFor(
      0, static_cast<std::int64_t>(values.size()),
      [&](std::int64_t i) {
        shuffled[static_cast<std::size_t>(i)] =
            values[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
      },
      /*grain=*/8192);
  values = std::move(shuffled);
}

}  // namespace fgr

#endif  // FGR_UTIL_SHUFFLE_H_
