// Wall-clock timing helper used by the benchmark harness and by estimator
// diagnostics (summarization vs optimization split).

#ifndef FGR_UTIL_STOPWATCH_H_
#define FGR_UTIL_STOPWATCH_H_

#include <chrono>

namespace fgr {

// Starts running on construction; Seconds() reads elapsed time without
// stopping; Restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fgr

#endif  // FGR_UTIL_STOPWATCH_H_
