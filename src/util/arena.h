// Bump-pointer arena for per-panel / per-request kernel temporaries.
//
// The hot paths allocate short-lived scratch on every call: the fused
// transpose-multiply needs per-shard column-tile buffers, summarization
// needs per-shard k×k partials, and every fgrd request replays those
// allocations. An arena turns each of those into a pointer bump against
// memory that is allocated once per thread and reused forever: blocks are
// retained across Reset()/scope exits, so steady-state traffic performs
// zero heap allocations in the kernel core.
//
// Usage pattern (always through a scope, so nested callers compose):
//
//   ArenaScope scope(ThreadLocalArena());
//   double* scratch = scope.AllocateArray<double>(tile_cols * k);
//   ...                       // scratch dies when `scope` does
//
// Thread safety: an Arena is single-threaded by design — workers use their
// own ThreadLocalArena(). Do not allocate from one arena on two threads.
// OpenMP and std::thread pools keep worker threads alive between calls, so
// the thread-local arenas amortize exactly like a global one would, without
// a lock on the bump pointer.

#ifndef FGR_UTIL_ARENA_H_
#define FGR_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "util/check.h"

namespace fgr {

class Arena {
 public:
  // Every allocation is aligned at least this much — one cache line, which
  // is also what the SIMD kernels want for their streaming stores.
  static constexpr std::size_t kDefaultAlignment = 64;

  explicit Arena(std::size_t min_block_bytes = std::size_t{1} << 20)
      : min_block_bytes_(min_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` aligned to `alignment` (a power of two ≤ the
  // block alignment). Memory is uninitialized and owned by the arena.
  void* Allocate(std::size_t bytes, std::size_t alignment = kDefaultAlignment) {
    FGR_DCHECK(alignment > 0 && (alignment & (alignment - 1)) == 0);
    FGR_DCHECK(alignment <= kDefaultAlignment);
    ++stats_.allocations;
    stats_.bytes_requested += bytes;
    std::size_t offset = Align(cursor_offset_, alignment);
    while (block_index_ < blocks_.size() &&
           offset + bytes > blocks_[block_index_].size) {
      ++block_index_;
      offset = 0;
    }
    if (block_index_ == blocks_.size()) {
      AddBlock(bytes);
      offset = 0;
    }
    Block& block = blocks_[block_index_];
    cursor_offset_ = offset + bytes;
    return block.data.get() + offset;
  }

  template <typename T>
  T* AllocateArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T) > 16
                                                           ? alignof(T)
                                                           : kDefaultAlignment));
  }

  // Rewinds the bump pointer to the start of the first block. All blocks
  // are retained, so subsequent allocations reuse the same memory.
  void Reset() {
    block_index_ = 0;
    cursor_offset_ = 0;
    ++stats_.resets;
  }

  // Cumulative counters. `allocations`/`bytes_requested` count every
  // Allocate call; `blocks_allocated`/`bytes_reserved` only grow when the
  // arena genuinely goes to the heap — a steady value across repeated
  // passes is the proof that scratch is being reused.
  struct Stats {
    std::uint64_t allocations = 0;
    std::uint64_t bytes_requested = 0;
    std::uint64_t blocks_allocated = 0;
    std::uint64_t bytes_reserved = 0;
    std::uint64_t resets = 0;
  };
  const Stats& stats() const { return stats_; }

  // Watermark for scoped reuse; see ArenaScope.
  struct Mark {
    std::size_t block_index = 0;
    std::size_t cursor_offset = 0;
  };
  Mark mark() const { return {block_index_, cursor_offset_}; }
  void Rewind(Mark mark) {
    FGR_DCHECK(mark.block_index < blocks_.size() ||
               (mark.block_index == 0 && blocks_.empty()));
    block_index_ = mark.block_index;
    cursor_offset_ = mark.cursor_offset;
  }

 private:
  struct Deleter {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{kDefaultAlignment});
    }
  };
  struct Block {
    std::unique_ptr<std::byte[], Deleter> data;
    std::size_t size = 0;
  };

  static std::size_t Align(std::size_t offset, std::size_t alignment) {
    return (offset + alignment - 1) & ~(alignment - 1);
  }

  void AddBlock(std::size_t at_least) {
    std::size_t size = min_block_bytes_;
    if (size < at_least) size = Align(at_least, kDefaultAlignment);
    Block block;
    block.data.reset(static_cast<std::byte*>(
        ::operator new[](size, std::align_val_t{kDefaultAlignment})));
    block.size = size;
    blocks_.push_back(std::move(block));
    block_index_ = blocks_.size() - 1;
    cursor_offset_ = 0;
    ++stats_.blocks_allocated;
    stats_.bytes_reserved += size;
  }

  std::size_t min_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;   // block the cursor lives in
  std::size_t cursor_offset_ = 0; // next free byte within that block
  Stats stats_;
};

// The calling thread's arena. Worker threads (OpenMP pool, fgrd workers)
// each get their own, reused across calls for the lifetime of the thread.
inline Arena& ThreadLocalArena() {
  thread_local Arena arena;
  return arena;
}

// RAII watermark: allocations made through (or after) the scope are
// released — returned to the arena for reuse, not to the heap — when the
// scope ends. Scopes nest; destroy in reverse construction order.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(&arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_->Rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  void* Allocate(std::size_t bytes,
                 std::size_t alignment = Arena::kDefaultAlignment) {
    return arena_->Allocate(bytes, alignment);
  }
  template <typename T>
  T* AllocateArray(std::size_t count) {
    return arena_->AllocateArray<T>(count);
  }

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

}  // namespace fgr

#endif  // FGR_UTIL_ARENA_H_
