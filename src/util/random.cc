#include "util/random.h"

#include <cmath>
#include <numbers>

namespace fgr {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion guarantees a non-zero xoshiro state for any seed.
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  FGR_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

std::int64_t Rng::UniformInt(std::int64_t bound) {
  FGR_CHECK_GT(bound, 0);
  const std::uint64_t ubound = static_cast<std::uint64_t>(bound);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % ubound;
  std::uint64_t value = Next();
  while (value >= limit) value = Next();
  return static_cast<std::int64_t>(value % ubound);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller with a guard against log(0).
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    FGR_CHECK_GE(w, 0.0);
    total += w;
  }
  FGR_CHECK_GT(total, 0.0) << "Discrete() requires a positive weight";
  double target = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slop: fall back to the last positively weighted index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace fgr
