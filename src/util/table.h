// Tabular output for the benchmark harness.
//
// Every figure/table bench prints an aligned human-readable table to stdout
// (the "same rows/series the paper reports") and can also persist the rows
// as CSV for plotting.

#ifndef FGR_UTIL_TABLE_H_
#define FGR_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace fgr {

// A simple column-ordered table of strings with typed append helpers.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  // Starts a new row; subsequent Add* calls fill it left to right.
  Table& NewRow();
  Table& Add(const std::string& value);
  Table& Add(double value, int precision = 4);
  Table& Add(std::int64_t value);
  Table& Add(int value) { return Add(static_cast<std::int64_t>(value)); }

  std::size_t num_rows() const { return rows_.size(); }

  // Raw contents, in insertion order (the JSON emitter serializes these).
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  // Renders with aligned columns, e.g.
  //   f        DCEr    GS
  //   0.0100   0.812   0.815
  std::string ToString() const;

  // RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string ToCsv() const;

  // Prints ToString() to stdout with a title banner.
  void Print(const std::string& title) const;

  // Writes ToCsv() to `path`; returns false (with a stderr note) on failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (helper shared with benches).
std::string FormatDouble(double value, int precision = 4);

}  // namespace fgr

#endif  // FGR_UTIL_TABLE_H_
