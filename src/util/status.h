// Minimal Status / Result<T> error-handling types.
//
// The fgr library does not throw exceptions. Fallible operations (file I/O,
// graph generation with infeasible parameters, optimizer failures) return
// Status or Result<T>; contract violations use FGR_CHECK instead.

#ifndef FGR_UTIL_STATUS_H_
#define FGR_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace fgr {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value of type T or an error Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FGR_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Requires ok().
  const T& value() const& {
    FGR_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    FGR_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    FGR_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace fgr

// Propagates a non-OK Status from the current function.
#define FGR_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::fgr::Status fgr_status_tmp_ = (expr);    \
    if (!fgr_status_tmp_.ok()) return fgr_status_tmp_; \
  } while (false)

#endif  // FGR_UTIL_STATUS_H_
