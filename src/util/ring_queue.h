// Bounded single-producer/single-consumer blocking queue.
//
// The async panel pipeline moves CsrPanel buffers between exactly two
// threads: the prefetcher produces filled panels, the compute thread
// consumes them and recycles the buffers back through a second queue. A
// mutex+condvar ring is the right tool at panel granularity — a panel is
// megabytes of I/O, so the handoff cost is noise and the blocking semantics
// (producer sleeps when compute falls behind, consumer sleeps when I/O
// falls behind) are exactly the backpressure the pipeline wants.
//
// Close/drain contract: Close() wakes every waiter; Push() fails once the
// queue is closed, but Pop() keeps returning queued items until the ring is
// empty, so in-flight panels (including an in-band error panel) are never
// dropped on shutdown.

#ifndef FGR_UTIL_RING_QUEUE_H_
#define FGR_UTIL_RING_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "util/check.h"

namespace fgr {

template <typename T>
class RingQueue {
 public:
  explicit RingQueue(std::size_t capacity) : ring_(capacity) {
    FGR_CHECK(capacity > 0) << "RingQueue capacity must be positive";
  }

  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  // Blocks until there is space or the queue is closed. Returns false (and
  // leaves `item` untouched) when closed.
  bool Push(T&& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return size_ < ring_.size() || closed_; });
    if (closed_) return false;
    ring_[(head_ + size_) % ring_.size()] = std::move(item);
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed *and* drained.
  // Returns false only when no item will ever arrive.
  bool Pop(T* item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;  // closed and drained
    *item = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop; returns false when the ring is currently empty
  // (regardless of closed state). Used to drain leftovers after shutdown.
  bool TryPop(T* item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == 0) return false;
    *item = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Wakes all waiters; Push fails from now on, Pop drains the remainder.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  // Reopens a closed (and externally drained) queue for the next pass.
  void Reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t capacity() const { return ring_.size(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace fgr

#endif  // FGR_UTIL_RING_QUEUE_H_
