// Parallel execution backend for the row-partitioned hot loops.
//
// The numeric core (SpMM, propagation iterations, summarization, objective
// evaluation) is embarrassingly row-parallel. This header provides the one
// abstraction those kernels build on:
//
//   * ParallelFor(begin, end, fn)        — fn(i) for each i in [begin, end);
//   * ParallelForShards(begin, end, s, fn) — the range split into exactly `s`
//     contiguous shards, fn(shard_begin, shard_end, shard_index); callers use
//     this for reductions (one partial accumulator per shard, combined in
//     shard order so results are deterministic for a fixed thread count).
//
// Backend: OpenMP when the library is built with FGR_WITH_OPENMP (see the
// CMake option of the same name), a plain serial loop otherwise. The thread
// count is resolved per call site: SetNumThreads() wins, then the
// FGR_NUM_THREADS environment variable, then the hardware thread count.
// With 1 thread every kernel takes the exact serial code path, so
// single-threaded runs stay bit-reproducible against the pre-parallel
// library.

#ifndef FGR_UTIL_PARALLEL_H_
#define FGR_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <exception>
#include <mutex>
#include <utility>
#include <vector>

#include "util/check.h"

#ifdef FGR_WITH_OPENMP
#include <omp.h>
#endif

namespace fgr {

// True when the library was compiled with the OpenMP backend.
bool ParallelismEnabled();

// Overrides the worker-thread count for all subsequent parallel kernels.
// `threads` >= 1 pins the count; 0 restores automatic resolution
// (FGR_NUM_THREADS env var, else the hardware thread count). In a serial
// build the setting is recorded but every kernel still runs on one thread.
void SetNumThreads(int threads);

// The worker-thread count parallel kernels will use right now. Always 1 in
// a serial build.
int NumThreads();

namespace internal {

// Caps the worker count so every worker gets at least `grain` iterations;
// returns 1 when parallelism is disabled or not worthwhile.
int ResolveWorkers(std::int64_t iterations, std::int64_t grain);

// Captures the first exception thrown inside a parallel region so it can be
// rethrown on the calling thread. OpenMP terminates the process when an
// exception escapes a parallel loop body, so every body must be wrapped.
class ExceptionCollector {
 public:
  template <typename Fn>
  void Run(Fn&& fn) noexcept {
    try {
      fn();
    } catch (...) {
      Capture(std::current_exception());
    }
  }

  // Rethrows the first captured exception, if any.
  void Rethrow();

 private:
  void Capture(std::exception_ptr exception);

  std::mutex mutex_;
  std::exception_ptr first_;
};

}  // namespace internal

// Minimum iterations per worker before fanning out pays for itself. Row
// kernels touch O(degree · k) doubles per iteration, so a few hundred rows
// amortize the fork/join cost comfortably.
inline constexpr std::int64_t kDefaultGrain = 512;

// Runs fn(i) for every i in [begin, end). Iterations must be independent;
// exceptions thrown by fn are rethrown on the calling thread (first wins).
template <typename Fn>
void ParallelFor(std::int64_t begin, std::int64_t end, Fn&& fn,
                 std::int64_t grain = kDefaultGrain) {
  if (end <= begin) return;
  const int workers = internal::ResolveWorkers(end - begin, grain);
#ifdef FGR_WITH_OPENMP
  if (workers > 1) {
    internal::ExceptionCollector exceptions;
#pragma omp parallel for schedule(static) num_threads(workers)
    for (std::int64_t i = begin; i < end; ++i) {
      exceptions.Run([&] { fn(i); });
    }
    exceptions.Rethrow();
    return;
  }
#endif
  (void)workers;
  for (std::int64_t i = begin; i < end; ++i) fn(i);
}

// Number of shards ParallelForShards should use for a reduction over
// `iterations` items: the resolved worker count, grain-capped. Callers size
// their per-shard accumulators with this.
inline int NumShards(std::int64_t iterations,
                     std::int64_t grain = kDefaultGrain) {
  return internal::ResolveWorkers(iterations, grain);
}

// Splits [begin, end) into exactly `shards` contiguous, balanced,
// ascending-order shards and runs fn(shard_begin, shard_end, shard_index)
// for each, concurrently when possible. Shard boundaries depend only on the
// range and shard count, so per-shard partial results combined in shard
// order give deterministic totals for a fixed thread setting.
template <typename Fn>
void ParallelForShards(std::int64_t begin, std::int64_t end, int shards,
                       Fn&& fn) {
  const std::int64_t count = end - begin;
  if (count <= 0) return;
  FGR_CHECK_GE(shards, 1);
  if (shards > count) shards = static_cast<int>(count);
  const std::int64_t base = count / shards;
  const std::int64_t extra = count % shards;
  const auto shard_range = [&](int s) {
    const std::int64_t lo =
        begin + s * base + std::min<std::int64_t>(s, extra);
    const std::int64_t hi = lo + base + (s < extra ? 1 : 0);
    return std::pair<std::int64_t, std::int64_t>(lo, hi);
  };
#ifdef FGR_WITH_OPENMP
  if (shards > 1) {
    internal::ExceptionCollector exceptions;
#pragma omp parallel for schedule(static, 1) num_threads(shards)
    for (int s = 0; s < shards; ++s) {
      exceptions.Run([&] {
        const auto [lo, hi] = shard_range(s);
        fn(lo, hi, s);
      });
    }
    exceptions.Rethrow();
    return;
  }
#endif
  for (int s = 0; s < shards; ++s) {
    const auto [lo, hi] = shard_range(s);
    fn(lo, hi, s);
  }
}

// Splits the rows of a CSR-style prefix-sum array into at most `shards`
// contiguous ranges of approximately equal total weight. `prefix` has
// rows + 1 monotone entries (row r spans weight prefix[r+1] - prefix[r]);
// a CSR row_ptr is exactly this shape, making the split nnz-balanced where
// the plain count split is row-balanced — the difference between idle and
// busy workers on power-law degree sequences. Returns the shard boundaries
// (first 0, last rows, strictly increasing, size ≤ shards + 1); boundaries
// depend only on (prefix, shards), so per-shard reductions stay
// deterministic for a fixed thread setting.
std::vector<std::int64_t> ShardByWeight(const std::vector<std::int64_t>& prefix,
                                        int shards);

// Raw-span overload for CSR panel views: `prefix` points at rows + 1
// monotone entries that may carry an arbitrary base offset (a slice of a
// full row_ptr keeps its global values). Boundaries are relative to the
// slice (first 0, last rows), exactly as the vector overload returns them
// for a whole row_ptr.
std::vector<std::int64_t> ShardByWeight(const std::int64_t* prefix,
                                        std::int64_t rows, int shards);

// Runs fn(shard_begin, shard_end, shard_index) over explicit shard
// boundaries as produced by ShardByWeight (boundaries[s] to
// boundaries[s + 1] for each s), concurrently when possible.
template <typename Fn>
void ParallelForShards(const std::vector<std::int64_t>& boundaries, Fn&& fn) {
  const int shards = static_cast<int>(boundaries.size()) - 1;
  if (shards <= 0) return;
#ifdef FGR_WITH_OPENMP
  if (shards > 1) {
    internal::ExceptionCollector exceptions;
#pragma omp parallel for schedule(static, 1) num_threads(shards)
    for (int s = 0; s < shards; ++s) {
      exceptions.Run([&] {
        fn(boundaries[static_cast<std::size_t>(s)],
           boundaries[static_cast<std::size_t>(s) + 1], s);
      });
    }
    exceptions.Rethrow();
    return;
  }
#endif
  for (int s = 0; s < shards; ++s) {
    fn(boundaries[static_cast<std::size_t>(s)],
       boundaries[static_cast<std::size_t>(s) + 1], s);
  }
}

}  // namespace fgr

#endif  // FGR_UTIL_PARALLEL_H_
