// Lightweight assertion macros used across the fgr library.
//
// FGR_CHECK(cond) aborts with a diagnostic when `cond` is false; it is always
// enabled, including in release builds, and is used to guard API contracts
// (dimension mismatches, out-of-range classes, ...). FGR_DCHECK is compiled
// out in release builds and guards internal invariants on hot paths.

#ifndef FGR_UTIL_CHECK_H_
#define FGR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fgr {
namespace internal {

// Terminates the process with a formatted diagnostic. Out-of-line so the
// macro expansion stays small at every call site.
[[noreturn]] void CheckFailed(const char* file, int line, const char* cond,
                              const std::string& message);

// Stream-style message collector for the `FGR_CHECK(x) << "detail"` form.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* cond)
      : file_(file), line_(line), cond_(cond) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, cond_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* cond_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fgr

#define FGR_CHECK(cond)                                               \
  while (!(cond))                                                     \
  ::fgr::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define FGR_CHECK_EQ(a, b) FGR_CHECK((a) == (b))
#define FGR_CHECK_NE(a, b) FGR_CHECK((a) != (b))
#define FGR_CHECK_LT(a, b) FGR_CHECK((a) < (b))
#define FGR_CHECK_LE(a, b) FGR_CHECK((a) <= (b))
#define FGR_CHECK_GT(a, b) FGR_CHECK((a) > (b))
#define FGR_CHECK_GE(a, b) FGR_CHECK((a) >= (b))

#ifdef NDEBUG
#define FGR_DCHECK(cond) \
  while (false) ::fgr::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)
#else
#define FGR_DCHECK(cond) FGR_CHECK(cond)
#endif

#endif  // FGR_UTIL_CHECK_H_
