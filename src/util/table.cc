#include "util/table.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/log.h"
#include "util/check.h"

namespace fgr {

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  FGR_CHECK(!columns_.empty());
}

Table& Table::NewRow() {
  FGR_CHECK(rows_.empty() || rows_.back().size() == columns_.size())
      << "previous row incomplete: " << rows_.back().size() << " of "
      << columns_.size() << " cells";
  rows_.emplace_back();
  return *this;
}

Table& Table::Add(const std::string& value) {
  FGR_CHECK(!rows_.empty()) << "call NewRow() before Add()";
  FGR_CHECK_LT(rows_.back().size(), columns_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::Add(double value, int precision) {
  return Add(FormatDouble(value, precision));
}

Table& Table::Add(std::int64_t value) { return Add(std::to_string(value)); }

std::string Table::ToString() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(columns_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c ? "," : "") << columns_[c];
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << row[c];
    }
    out << '\n';
  }
  return out.str();
}

void Table::Print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), ToString().c_str());
  std::fflush(stdout);
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    FGR_LOG(kError, "table") << "could not write " << path;
    return false;
  }
  out << ToCsv();
  return static_cast<bool>(out);
}

}  // namespace fgr
