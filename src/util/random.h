// Deterministic pseudo-random number generation for the fgr library.
//
// All randomized components (graph generator, seed sampling, optimizer
// restarts) take an explicit Rng so experiments are reproducible from a
// single seed. The generator is xoshiro256++, which is fast, has a 2^256-1
// period, and passes BigCrush; we implement it locally so results do not
// depend on the standard library's unspecified distributions.

#ifndef FGR_UTIL_RANDOM_H_
#define FGR_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace fgr {

// xoshiro256++ generator with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::int64_t UniformInt(std::int64_t bound);

  // Standard normal via Box-Muller.
  double Normal();

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  // Samples an index from an unnormalized non-negative weight vector.
  // Requires at least one strictly positive weight.
  std::size_t Discrete(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          UniformInt(static_cast<std::int64_t>(i)));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  // Derives an independent generator; used to hand child components their
  // own stream so their draws do not interleave.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fgr

#endif  // FGR_UTIL_RANDOM_H_
