// Structured JSON output for the benchmark harness.
//
// Every bench executable can be pointed at a file with `--json <path>` and
// writes one *bench run* object there: provenance (git sha, hostname, UTC
// timestamp, thread count, the FGR_TRIALS/FGR_SCALE/FGR_FULL knobs,
// FGR_DATA_DIR when real data shadows the mimics) plus one *case* per
// emitted table — the same columns/rows the human-readable table prints,
// with per-case wall and CPU timings. tools/bench_orchestrator.py collects
// these files, merges them into the top-level BENCH_*.json trajectory, and
// renders BENCHMARK_REPORT.md; tools/perf_gate.py gates CI on ratio
// invariants computed from them.
//
// Serialization reuses the serve/protocol.h JSON machinery, so doubles are
// written with %.17g and round-trip exactly: ParseBenchRunJson(
// BenchRunToJson(run)) reproduces `run` bit for bit.

#ifndef FGR_UTIL_BENCH_JSON_H_
#define FGR_UTIL_BENCH_JSON_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "util/table.h"

namespace fgr {

inline constexpr int kBenchJsonSchemaVersion = 1;

// One emitted table: the figure/table name ("fig5a"), its title, the table
// contents as printed (cells keep their formatted precision, so JSON and
// CSV agree byte for byte), and how long producing it took.
struct BenchCaseJson {
  std::string name;
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

// One bench-executable invocation.
struct BenchRunJson {
  int schema_version = kBenchJsonSchemaVersion;
  std::string bench;          // executable name, e.g. "bench_fig7_realworld"
  std::string git_sha;        // FGR_GIT_SHA env, "unknown" when unset
  std::string hostname;
  std::string timestamp_utc;  // ISO 8601, e.g. "2026-08-07T12:00:00Z"
  std::string data_dir;       // FGR_DATA_DIR ("" = mimic data)
  int threads = 1;
  int trials = 0;
  double scale = 1.0;
  bool full_scale = false;
  std::vector<BenchCaseJson> cases;
};

// Fills provenance (bench name, git sha, hostname, timestamp, threads, env
// knobs) for a run starting now.
BenchRunJson MakeBenchRun(const std::string& bench_name);

// Appends `table` to `run` as a case named `name`.
void AddBenchCase(BenchRunJson& run, const Table& table,
                  const std::string& name, const std::string& title,
                  double wall_seconds, double cpu_seconds);

// Compact single-line JSON (doubles as %.17g — exact round trip).
std::string BenchRunToJson(const BenchRunJson& run);

// Parses what BenchRunToJson wrote. InvalidArgument on malformed input or
// an unsupported schema_version.
Result<BenchRunJson> ParseBenchRunJson(const std::string& text);

// Writes BenchRunToJson(run) + '\n' to `path` (atomic temp + rename, so a
// crashed bench never leaves a half-written file for the orchestrator).
Status WriteBenchRunJson(const BenchRunJson& run, const std::string& path);

}  // namespace fgr

#endif  // FGR_UTIL_BENCH_JSON_H_
