#include "util/shuffle.h"

#include <algorithm>

#include "util/parallel.h"

namespace fgr {
namespace {

// The i-th key of the SplitMix64 stream seeded with `seed`.
inline std::uint64_t KeyAt(std::uint64_t seed, std::int64_t i) {
  std::uint64_t z =
      seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(i) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::vector<std::int64_t> ShufflePermutation(std::int64_t size,
                                             std::uint64_t seed) {
  std::vector<std::int64_t> perm(
      static_cast<std::size_t>(std::max<std::int64_t>(size, 0)));
  if (size <= 0) return perm;
  if (size == 1) {
    perm[0] = 0;
    return perm;
  }

  constexpr int kBucketBits = 8;
  constexpr int kBuckets = 1 << kBucketBits;
  struct Entry {
    std::uint64_t key;
    std::int64_t index;
  };

  // Histogram over the key's top bits, one partial count vector per shard.
  // The shard count may vary with the thread setting: the scatter below
  // lands entries within a bucket in shard order, but the per-bucket sort
  // erases that order, so the final permutation depends only on the keys.
  const int shards = NumShards(size, /*grain=*/4096);
  std::vector<std::vector<std::int64_t>> counts(
      static_cast<std::size_t>(shards),
      std::vector<std::int64_t>(kBuckets, 0));
  ParallelForShards(0, size, shards,
                    [&](std::int64_t lo, std::int64_t hi, int s) {
                      auto& local = counts[static_cast<std::size_t>(s)];
                      for (std::int64_t i = lo; i < hi; ++i) {
                        ++local[KeyAt(seed, i) >> (64 - kBucketBits)];
                      }
                    });

  // Bucket-major offsets so the scatter lands bucket-contiguous.
  std::vector<std::int64_t> bucket_begin(kBuckets + 1, 0);
  std::vector<std::vector<std::int64_t>> offsets(
      static_cast<std::size_t>(shards),
      std::vector<std::int64_t>(kBuckets, 0));
  std::int64_t running = 0;
  for (int b = 0; b < kBuckets; ++b) {
    bucket_begin[static_cast<std::size_t>(b)] = running;
    for (int s = 0; s < shards; ++s) {
      offsets[static_cast<std::size_t>(s)][static_cast<std::size_t>(b)] =
          running;
      running +=
          counts[static_cast<std::size_t>(s)][static_cast<std::size_t>(b)];
    }
  }
  bucket_begin[kBuckets] = running;

  std::vector<Entry> entries(static_cast<std::size_t>(size));
  ParallelForShards(
      0, size, shards, [&](std::int64_t lo, std::int64_t hi, int s) {
        std::vector<std::int64_t> cursor =
            offsets[static_cast<std::size_t>(s)];
        for (std::int64_t i = lo; i < hi; ++i) {
          const std::uint64_t key = KeyAt(seed, i);
          entries[static_cast<std::size_t>(
              cursor[key >> (64 - kBucketBits)]++)] = {key, i};
        }
      });

  // Per-bucket sort; ties broken by original index so the permutation is
  // unique (and thus thread-count independent) even on key collisions.
  ParallelFor(
      0, kBuckets,
      [&](std::int64_t b) {
        std::sort(
            entries.begin() +
                static_cast<std::ptrdiff_t>(
                    bucket_begin[static_cast<std::size_t>(b)]),
            entries.begin() +
                static_cast<std::ptrdiff_t>(
                    bucket_begin[static_cast<std::size_t>(b) + 1]),
            [](const Entry& a, const Entry& b_entry) {
              return a.key < b_entry.key ||
                     (a.key == b_entry.key && a.index < b_entry.index);
            });
      },
      /*grain=*/1);

  ParallelFor(0, size, [&](std::int64_t i) {
    perm[static_cast<std::size_t>(i)] =
        entries[static_cast<std::size_t>(i)].index;
  });
  return perm;
}

}  // namespace fgr
