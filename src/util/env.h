// Environment-variable knobs for the benchmark harness and runtime.
//
// Benches scale workloads through environment variables (e.g. FGR_SCALE,
// FGR_TRIALS) so the full suite runs in minutes by default but can be pushed
// to paper-scale sizes without recompiling. The library itself reads
// FGR_NUM_THREADS (see util/parallel.h).

#ifndef FGR_UTIL_ENV_H_
#define FGR_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace fgr {

// Reads an integer/double/string environment variable, returning
// `default_value` when unset or unparsable.
std::int64_t EnvInt64(const char* name, std::int64_t default_value);
double EnvDouble(const char* name, double default_value);
std::string EnvString(const char* name, const std::string& default_value);

}  // namespace fgr

#endif  // FGR_UTIL_ENV_H_
