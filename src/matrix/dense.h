// Row-major dense matrix of doubles.
//
// Used for the n×k belief/label matrices (k is the number of classes, small)
// and for the k×k compatibility and statistics matrices. The class keeps the
// operation set deliberately small and explicit; the heavy n-scale work goes
// through SparseMatrix::Multiply (SpMM).
//
// Storage contract: the buffer is 64-byte aligned (AlignedAllocator), and
// rows are laid out at a fixed `stride()` ≥ cols() doubles. The default
// construction is dense (stride == cols, buffer size rows·cols — the shape
// every serializer and bit-comparison relies on). WithPaddedStride() rounds
// the stride up to a full cache line (8 doubles) so every row starts
// 64-byte aligned; the pad lanes are storage only — no operation reads
// them as data, and matrices that escape the process (serialized gold
// labels, .fgrsum sidecars) stay unpadded. All element-wise operations
// iterate row-wise in row-major order, so padded and unpadded operands
// produce bit-identical results.

#ifndef FGR_MATRIX_DENSE_H_
#define FGR_MATRIX_DENSE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/aligned.h"
#include "util/check.h"

namespace fgr {

class DenseMatrix {
 public:
  using Index = std::int64_t;
  using Buffer = std::vector<double, AlignedAllocator<double, 64>>;

  // Zero-initialized rows×cols matrix. An empty (0×0) matrix is allowed and
  // is the default.
  DenseMatrix() : rows_(0), cols_(0), stride_(0) {}
  DenseMatrix(Index rows, Index cols)
      : rows_(rows), cols_(cols), stride_(cols),
        data_(static_cast<std::size_t>(rows * cols), 0.0) {
    FGR_CHECK_GE(rows, 0);
    FGR_CHECK_GE(cols, 0);
  }

  // Zero-initialized matrix whose row stride is cols rounded up to a
  // multiple of 8 doubles (one cache line), so every row starts 64-byte
  // aligned. Use for internal scratch on SIMD hot paths only: data() then
  // includes the pad lanes, so padded matrices must not be serialized or
  // bit-compared against dense ones.
  static DenseMatrix WithPaddedStride(Index rows, Index cols);

  // Builds from nested braces: DenseMatrix::FromRows({{1, 2}, {3, 4}}).
  static DenseMatrix FromRows(
      std::initializer_list<std::initializer_list<double>> rows);
  static DenseMatrix Identity(Index n);
  // Matrix with every entry equal to `value`.
  static DenseMatrix Constant(Index rows, Index cols, double value);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  // Doubles between consecutive row starts; stride() == cols() unless the
  // matrix was built with WithPaddedStride.
  Index stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double operator()(Index i, Index j) const {
    FGR_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * stride_ + j)];
  }
  double& operator()(Index i, Index j) {
    FGR_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * stride_ + j)];
  }

  const double* RowPtr(Index i) const {
    FGR_DCHECK(i >= 0 && i < rows_);
    return data_.data() + i * stride_;
  }
  double* RowPtr(Index i) {
    FGR_DCHECK(i >= 0 && i < rows_);
    return data_.data() + i * stride_;
  }

  // The raw buffer start (row 0), with no row-range check — the kernel
  // drivers use this to form base pointers for empty panels.
  const double* raw() const { return data_.data(); }
  double* raw() { return data_.data(); }

  // The whole backing buffer, pad lanes included for padded matrices.
  // Serializers and bit-for-bit comparisons use this on dense (unpadded)
  // matrices, where it is exactly the rows·cols row-major payload.
  const Buffer& data() const { return data_; }

  void SetZero();
  void Fill(double value);

  // this += other / this -= other / this *= scalar. Dimensions must match.
  void Add(const DenseMatrix& other);
  void Sub(const DenseMatrix& other);
  void Scale(double factor);
  // this += factor * other (axpy).
  void AddScaled(const DenseMatrix& other, double factor);
  // Adds `value` to every entry ("broadcasting" in the paper's notation).
  void AddConstant(double value);

  DenseMatrix Transpose() const;

  // Dense matrix product this(r×c) * other(c×p). Intended for small (k-sized)
  // matrices; n-scale products go through SparseMatrix.
  DenseMatrix Multiply(const DenseMatrix& other) const;

  // this^p for a square matrix; p >= 0 (p == 0 gives identity).
  DenseMatrix Power(int p) const;

  double FrobeniusNorm() const;
  double MaxAbs() const;
  double Sum() const;
  std::vector<double> RowSums() const;
  std::vector<double> ColSums() const;

  // Index of the maximum entry in row i; the smallest index wins ties so
  // labeling is deterministic.
  Index ArgmaxInRow(Index i) const;

  // Multi-line human-readable rendering (tests, debugging, bench output).
  std::string ToString(int precision = 4) const;

 private:
  Index rows_;
  Index cols_;
  Index stride_;
  Buffer data_;
};

// ‖a − b‖_F without materializing the difference.
double FrobeniusDistance(const DenseMatrix& a, const DenseMatrix& b);

// True when ‖a − b‖_max <= tol.
bool AllClose(const DenseMatrix& a, const DenseMatrix& b, double tol = 1e-9);

}  // namespace fgr

#endif  // FGR_MATRIX_DENSE_H_
