// Row-major dense matrix of doubles.
//
// Used for the n×k belief/label matrices (k is the number of classes, small)
// and for the k×k compatibility and statistics matrices. The class keeps the
// operation set deliberately small and explicit; the heavy n-scale work goes
// through SparseMatrix::Multiply (SpMM).

#ifndef FGR_MATRIX_DENSE_H_
#define FGR_MATRIX_DENSE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"

namespace fgr {

class DenseMatrix {
 public:
  using Index = std::int64_t;

  // Zero-initialized rows×cols matrix. An empty (0×0) matrix is allowed and
  // is the default.
  DenseMatrix() : rows_(0), cols_(0) {}
  DenseMatrix(Index rows, Index cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), 0.0) {
    FGR_CHECK_GE(rows, 0);
    FGR_CHECK_GE(cols, 0);
  }

  // Builds from nested braces: DenseMatrix::FromRows({{1, 2}, {3, 4}}).
  static DenseMatrix FromRows(
      std::initializer_list<std::initializer_list<double>> rows);
  static DenseMatrix Identity(Index n);
  // Matrix with every entry equal to `value`.
  static DenseMatrix Constant(Index rows, Index cols, double value);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double operator()(Index i, Index j) const {
    FGR_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double& operator()(Index i, Index j) {
    FGR_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  const double* RowPtr(Index i) const {
    FGR_DCHECK(i >= 0 && i < rows_);
    return data_.data() + i * cols_;
  }
  double* RowPtr(Index i) {
    FGR_DCHECK(i >= 0 && i < rows_);
    return data_.data() + i * cols_;
  }

  const std::vector<double>& data() const { return data_; }

  void SetZero();
  void Fill(double value);

  // this += other / this -= other / this *= scalar. Dimensions must match.
  void Add(const DenseMatrix& other);
  void Sub(const DenseMatrix& other);
  void Scale(double factor);
  // this += factor * other (axpy).
  void AddScaled(const DenseMatrix& other, double factor);
  // Adds `value` to every entry ("broadcasting" in the paper's notation).
  void AddConstant(double value);

  DenseMatrix Transpose() const;

  // Dense matrix product this(r×c) * other(c×p). Intended for small (k-sized)
  // matrices; n-scale products go through SparseMatrix.
  DenseMatrix Multiply(const DenseMatrix& other) const;

  // this^p for a square matrix; p >= 0 (p == 0 gives identity).
  DenseMatrix Power(int p) const;

  double FrobeniusNorm() const;
  double MaxAbs() const;
  double Sum() const;
  std::vector<double> RowSums() const;
  std::vector<double> ColSums() const;

  // Index of the maximum entry in row i; the smallest index wins ties so
  // labeling is deterministic.
  Index ArgmaxInRow(Index i) const;

  // Multi-line human-readable rendering (tests, debugging, bench output).
  std::string ToString(int precision = 4) const;

 private:
  Index rows_;
  Index cols_;
  std::vector<double> data_;
};

// ‖a − b‖_F without materializing the difference.
double FrobeniusDistance(const DenseMatrix& a, const DenseMatrix& b);

// True when ‖a − b‖_max <= tol.
bool AllClose(const DenseMatrix& a, const DenseMatrix& b, double tol = 1e-9);

}  // namespace fgr

#endif  // FGR_MATRIX_DENSE_H_
