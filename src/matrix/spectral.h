// Spectral-radius estimation by power iteration.
//
// LinBP's convergence condition (Eq. 2 in the paper) requires the spectral
// radii of both the adjacency matrix W (n×n, sparse, symmetric) and the
// centered compatibility matrix H̃ (k×k, dense, symmetric). For symmetric
// matrices the spectral radius equals the largest absolute eigenvalue, which
// power iteration recovers from a random start. The paper uses PyAMG's
// approximate routine for the same purpose; power iteration computes the
// identical quantity.

#ifndef FGR_MATRIX_SPECTRAL_H_
#define FGR_MATRIX_SPECTRAL_H_

#include <cstdint>

#include "matrix/dense.h"
#include "matrix/sparse.h"

namespace fgr {

struct PowerIterationOptions {
  int max_iterations = 200;
  double tolerance = 1e-7;
  std::uint64_t seed = 12345;
};

// Spectral radius of a symmetric sparse matrix. Returns 0 for empty matrices.
double SpectralRadius(const SparseMatrix& matrix,
                      const PowerIterationOptions& options = {});

// Same, over a whole-matrix CsrPanelView (first_row 0, rows == cols) — the
// form the serving layer uses on mmap'd .fgrbin caches. The SparseMatrix
// overload delegates here, so both paths run the identical iteration.
double SpectralRadius(const CsrPanelView& view,
                      const PowerIterationOptions& options = {});

// Spectral radius of a symmetric dense matrix (intended for k×k H).
double SpectralRadius(const DenseMatrix& matrix,
                      const PowerIterationOptions& options = {});

}  // namespace fgr

#endif  // FGR_MATRIX_SPECTRAL_H_
