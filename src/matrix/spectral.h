// Spectral-radius estimation by power iteration.
//
// LinBP's convergence condition (Eq. 2 in the paper) requires the spectral
// radii of both the adjacency matrix W (n×n, sparse, symmetric) and the
// centered compatibility matrix H̃ (k×k, dense, symmetric). For symmetric
// matrices the spectral radius equals the largest absolute eigenvalue, which
// power iteration recovers from a random start. The paper uses PyAMG's
// approximate routine for the same purpose; power iteration computes the
// identical quantity.

#ifndef FGR_MATRIX_SPECTRAL_H_
#define FGR_MATRIX_SPECTRAL_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "matrix/dense.h"
#include "matrix/sparse.h"
#include "util/check.h"
#include "util/random.h"

namespace fgr {

struct PowerIterationOptions {
  int max_iterations = 200;
  double tolerance = 1e-7;
  std::uint64_t seed = 12345;
};

namespace spectral_internal {
inline double Norm2(const std::vector<double>& x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return std::sqrt(sum);
}
}  // namespace spectral_internal

// Shared power-iteration loop over an opaque y = A·x callback. Exposed so
// callers that only see the matrix one panel at a time (the out-of-core
// propagation path) run the *identical* iteration — same seed, same start
// vector, same convergence test — as the in-core SpectralRadius overloads,
// which keeps streamed and in-core spectral radii bit-identical when the
// callback reproduces A·x exactly.
template <typename MultiplyFn>
double PowerIterate(std::int64_t n, MultiplyFn&& multiply,
                    const PowerIterationOptions& options = {}) {
  using spectral_internal::Norm2;
  if (n == 0) return 0.0;
  Rng rng(options.seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  double norm = Norm2(x);
  FGR_CHECK_GT(norm, 0.0);
  for (double& v : x) v /= norm;

  std::vector<double> y;
  double lambda = 0.0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    multiply(x, &y);
    const double y_norm = Norm2(y);
    if (y_norm == 0.0) return 0.0;  // x in the null space: radius estimate 0
    // Rayleigh-style estimate |λ| = ‖Ax‖ for normalized x; valid for the
    // symmetric matrices this routine is documented for.
    const double next = y_norm;
    for (std::size_t i = 0; i < y.size(); ++i) x[i] = y[i] / y_norm;
    if (std::fabs(next - lambda) <= options.tolerance * std::fabs(next)) {
      return next;
    }
    lambda = next;
  }
  return lambda;
}

// Spectral radius of a symmetric sparse matrix. Returns 0 for empty matrices.
double SpectralRadius(const SparseMatrix& matrix,
                      const PowerIterationOptions& options = {});

// Same, over a whole-matrix CsrPanelView (first_row 0, rows == cols) — the
// form the serving layer uses on mmap'd .fgrbin caches. The SparseMatrix
// overload delegates here, so both paths run the identical iteration.
double SpectralRadius(const CsrPanelView& view,
                      const PowerIterationOptions& options = {});

// Spectral radius of a symmetric dense matrix (intended for k×k H).
double SpectralRadius(const DenseMatrix& matrix,
                      const PowerIterationOptions& options = {});

}  // namespace fgr

#endif  // FGR_MATRIX_SPECTRAL_H_
