// The Hashimoto (non-backtracking) operator.
//
// Prior work on non-backtracking walks (Section 2.6 of the paper: graph
// sampling, spectral clustering, centrality) replaces the n×n adjacency
// matrix with the 2m×2m "Hashimoto matrix" B over *directed edges*:
//   B[(u→v), (v→w)] = 1  iff  w ≠ u.
// Powers of B count non-backtracking paths in an augmented state space with
// O(m·(d−1)) nonzeros. The paper's contribution is precisely that its
// factorized recurrence (Prop. 4.3 / Alg. 4.4) achieves the same counts
// with n×k intermediates and no augmented space. This module implements the
// Hashimoto construction as the reference baseline so tests and the
// ablation bench can quantify that claim.

#ifndef FGR_MATRIX_HASHIMOTO_H_
#define FGR_MATRIX_HASHIMOTO_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "matrix/sparse.h"

namespace fgr {

// The directed-edge state space of a graph: each undirected edge {u, v}
// contributes states (u→v) and (v→u).
class DirectedEdgeSpace {
 public:
  explicit DirectedEdgeSpace(const Graph& graph);

  std::int64_t num_states() const {
    return static_cast<std::int64_t>(tails_.size());
  }

  NodeId tail(std::int64_t state) const {
    return tails_[static_cast<std::size_t>(state)];
  }
  NodeId head(std::int64_t state) const {
    return heads_[static_cast<std::size_t>(state)];
  }

  // State id of (u→v); u and v must be adjacent.
  std::int64_t StateOf(NodeId u, NodeId v) const;

 private:
  std::vector<NodeId> tails_;
  std::vector<NodeId> heads_;
  // CSR-style lookup: state ids sorted by (tail, head).
  std::vector<std::int64_t> tail_offsets_;
};

// Builds the 2m×2m Hashimoto matrix of the graph.
SparseMatrix BuildHashimotoMatrix(const Graph& graph,
                                  const DirectedEdgeSpace& edges);

// Reference NB path counting through the Hashimoto operator: the number of
// non-backtracking paths of length `length` ≥ 1 from u to v equals
//   Σ_{(u→a)} Σ_{(b→v)} B^(length−1)[(u→a), (b→v)].
// Exposed as a full n×n count matrix. Cost: O(length) sparse 2m-state
// products — the expensive construction the paper's factorization replaces.
SparseMatrix NbPathCountsViaHashimoto(const Graph& graph, int length);

}  // namespace fgr

#endif  // FGR_MATRIX_HASHIMOTO_H_
