#include "matrix/spectral.h"

#include <vector>

#include "util/check.h"

namespace fgr {

// PowerIterate itself lives in spectral.h so the out-of-core propagation
// path can drive it with a streamed multiply callback.

double SpectralRadius(const SparseMatrix& matrix,
                      const PowerIterationOptions& options) {
  FGR_CHECK_EQ(matrix.rows(), matrix.cols());
  return SpectralRadius(matrix.View(), options);
}

double SpectralRadius(const CsrPanelView& view,
                      const PowerIterationOptions& options) {
  FGR_CHECK_EQ(view.first_row(), 0) << "spectral radius needs a whole matrix";
  FGR_CHECK_EQ(view.rows(), view.cols());
  return PowerIterate(
      view.rows(),
      [&view](const std::vector<double>& x, std::vector<double>* y) {
        y->assign(x.size(), 0.0);
        view.MultiplyVectorInto(x, y);
      },
      options);
}

double SpectralRadius(const DenseMatrix& matrix,
                      const PowerIterationOptions& options) {
  FGR_CHECK_EQ(matrix.rows(), matrix.cols());
  const auto n = matrix.rows();
  return PowerIterate(
      n,
      [&matrix, n](const std::vector<double>& x, std::vector<double>* y) {
        y->assign(static_cast<std::size_t>(n), 0.0);
        for (DenseMatrix::Index i = 0; i < n; ++i) {
          const double* row = matrix.RowPtr(i);
          double sum = 0.0;
          for (DenseMatrix::Index j = 0; j < n; ++j) {
            sum += row[j] * x[static_cast<std::size_t>(j)];
          }
          (*y)[static_cast<std::size_t>(i)] = sum;
        }
      },
      options);
}

}  // namespace fgr
