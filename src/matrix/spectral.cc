#include "matrix/spectral.h"

#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace fgr {
namespace {

double Norm2(const std::vector<double>& x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return std::sqrt(sum);
}

// Shared power-iteration loop over an opaque y = A·x callback.
template <typename MultiplyFn>
double PowerIterate(std::int64_t n, MultiplyFn&& multiply,
                    const PowerIterationOptions& options) {
  if (n == 0) return 0.0;
  Rng rng(options.seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  double norm = Norm2(x);
  FGR_CHECK_GT(norm, 0.0);
  for (double& v : x) v /= norm;

  std::vector<double> y;
  double lambda = 0.0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    multiply(x, &y);
    const double y_norm = Norm2(y);
    if (y_norm == 0.0) return 0.0;  // x in the null space: radius estimate 0
    // Rayleigh-style estimate |λ| = ‖Ax‖ for normalized x; valid for the
    // symmetric matrices this routine is documented for.
    const double next = y_norm;
    for (std::size_t i = 0; i < y.size(); ++i) x[i] = y[i] / y_norm;
    if (std::fabs(next - lambda) <= options.tolerance * std::fabs(next)) {
      return next;
    }
    lambda = next;
  }
  return lambda;
}

}  // namespace

double SpectralRadius(const SparseMatrix& matrix,
                      const PowerIterationOptions& options) {
  FGR_CHECK_EQ(matrix.rows(), matrix.cols());
  return SpectralRadius(matrix.View(), options);
}

double SpectralRadius(const CsrPanelView& view,
                      const PowerIterationOptions& options) {
  FGR_CHECK_EQ(view.first_row(), 0) << "spectral radius needs a whole matrix";
  FGR_CHECK_EQ(view.rows(), view.cols());
  return PowerIterate(
      view.rows(),
      [&view](const std::vector<double>& x, std::vector<double>* y) {
        y->assign(x.size(), 0.0);
        view.MultiplyVectorInto(x, y);
      },
      options);
}

double SpectralRadius(const DenseMatrix& matrix,
                      const PowerIterationOptions& options) {
  FGR_CHECK_EQ(matrix.rows(), matrix.cols());
  const auto n = matrix.rows();
  return PowerIterate(
      n,
      [&matrix, n](const std::vector<double>& x, std::vector<double>* y) {
        y->assign(static_cast<std::size_t>(n), 0.0);
        for (DenseMatrix::Index i = 0; i < n; ++i) {
          const double* row = matrix.RowPtr(i);
          double sum = 0.0;
          for (DenseMatrix::Index j = 0; j < n; ++j) {
            sum += row[j] * x[static_cast<std::size_t>(j)];
          }
          (*y)[static_cast<std::size_t>(i)] = sum;
        }
      },
      options);
}

}  // namespace fgr
