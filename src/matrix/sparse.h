// Compressed-sparse-row (CSR) matrix of doubles.
//
// This is the workhorse for the n×n adjacency matrix W. The two operations
// that matter for the paper are:
//   * Multiply (SpMM): W × dense(n×k) in O(nnz · k) — the inner step of both
//     label propagation (Eq. 4) and the factorized path summation (Alg. 4.4);
//   * SpGemm: W × W as an explicit sparse product — only used by the
//     *unfactorized* baseline of Fig. 5b to show why materializing Wℓ is
//     infeasible.

#ifndef FGR_MATRIX_SPARSE_H_
#define FGR_MATRIX_SPARSE_H_

#include <cstdint>
#include <vector>

#include "matrix/dense.h"
#include "util/check.h"
#include "util/status.h"

namespace fgr {

// A (row, col, value) entry used to assemble CSR matrices.
struct Triplet {
  std::int64_t row = 0;
  std::int64_t col = 0;
  double value = 0.0;
};

// A non-owning view of a contiguous block of CSR rows — the unit the
// out-of-core estimation path streams through the SpMM and summarization
// kernels. The view covers global rows [first_row, first_row + rows) of a
// matrix whose full column space stays addressable, so Multiply gathers
// from every row of the dense operand while writing only the panel's
// output rows. SparseMatrix::Multiply/MultiplyTransposed run on a
// whole-matrix view of their own storage, so a streamed panel takes
// exactly the in-core kernel: per-row results are bit-identical, and only
// sharded reductions reassociate.
class CsrPanelView {
 public:
  using Index = std::int64_t;

  // `row_ptr` has num_rows + 1 entries and may carry an arbitrary base
  // offset (a slice of a full CSR row_ptr keeps its global values);
  // col_idx / values hold the panel's own entries, indexed by
  // row_ptr[r] - row_ptr[0]. `values` may be nullptr, which means every
  // entry has weight exactly 1.0 (a 0/1 adjacency matrix) — the kernels
  // then skip the values load entirely. This is what lets the mmap'd
  // .fgrbin reader (data/mmap_fgrbin.h) serve unit-weight caches without
  // materializing an nnz-sized values array: multiplying by a literal 1.0
  // is bit-identical to multiplying by a stored 1.0.
  CsrPanelView(Index first_row, Index num_rows, Index num_cols,
               const Index* row_ptr, const Index* col_idx,
               const double* values)
      : first_row_(first_row), rows_(num_rows), cols_(num_cols),
        row_ptr_(row_ptr), col_idx_(col_idx), values_(values) {
    FGR_CHECK_GE(first_row, 0);
    FGR_CHECK_GE(num_rows, 0);
    FGR_CHECK_GE(num_cols, 0);
  }

  Index first_row() const { return first_row_; }
  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return row_ptr_[rows_] - row_ptr_[0]; }

  // True when the view carries no values array (every weight is 1.0).
  bool unit_weights() const { return values_ == nullptr; }

  // Writes rows [first_row, first_row + rows) of out = matrix × x, zeroing
  // exactly those rows first; other rows of `out` are untouched. Checks
  // x.rows() == cols() and that `out` is tall enough. Row-parallel with
  // nnz-balanced shards; each output row is accumulated by one worker in
  // serial order, so results are bit-identical at any thread count.
  void MultiplyInto(const DenseMatrix& x, DenseMatrix* out) const;

  // Adds the panel's contribution to matrixᵀ × x into `out` (cols() ×
  // x.cols(), zeroed by the caller before the pass). Rows scatter into
  // shared output rows, so the threaded version combines per-shard
  // partials in shard order (deterministic for a fixed thread count,
  // reassociated relative to serial).
  void MultiplyTransposedAddInto(const DenseMatrix& x, DenseMatrix* out) const;

  // Row sums of the panel (weighted degrees), written to out[0..rows()).
  void RowSumsInto(double* out) const;

  // y[first_row .. first_row + rows) = panel × x for a vector; other
  // entries of `y` are untouched. Checks x.size() == cols() and that `y`
  // is long enough. Row-parallel and bit-reproducible across thread counts
  // like MultiplyInto. SparseMatrix::MultiplyVector runs on a whole-matrix
  // view of this kernel, so power iteration over a mapped cache and over an
  // in-core matrix takes the identical code path.
  void MultiplyVectorInto(const std::vector<double>& x,
                          std::vector<double>* y) const;

 private:
  Index first_row_;
  Index rows_;
  Index cols_;
  const Index* row_ptr_;
  const Index* col_idx_;
  const double* values_;
};

class SparseMatrix {
 public:
  using Index = std::int64_t;

  SparseMatrix() : rows_(0), cols_(0) {}

  // Assembles a CSR matrix from triplets; duplicate (row, col) entries are
  // summed. Triplets may arrive in any order.
  static SparseMatrix FromTriplets(Index rows, Index cols,
                                   std::vector<Triplet> triplets);

  // Adopts pre-assembled CSR arrays without copying or re-sorting — the
  // O(read) path for the .fgrbin binary cache. The arrays are validated
  // (monotone row_ptr bracketed by [0, nnz], strictly ascending in-range
  // columns per row, matching lengths) because they typically come from
  // disk; a malformed input yields an error Status, never a crash.
  static Result<SparseMatrix> FromCsr(Index rows, Index cols,
                                      std::vector<Index> row_ptr,
                                      std::vector<Index> col_idx,
                                      std::vector<double> values);

  // Diagonal matrix with the given entries.
  static SparseMatrix Diagonal(const std::vector<double>& diagonal);

  static SparseMatrix Identity(Index n);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(values_.size()); }

  const std::vector<Index>& row_ptr() const { return row_ptr_; }
  const std::vector<Index>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  // out = this × x. Checks x.rows() == cols(); `out` is resized/zeroed
  // internally and must not alias x. Row-parallel under the ParallelFor
  // backend with nnz-balanced shard boundaries (ShardByWeight over row_ptr),
  // so skewed degree sequences do not serialize on the hub rows; results are
  // bit-identical for any thread count because each output row is
  // accumulated by exactly one worker in serial order.
  void Multiply(const DenseMatrix& x, DenseMatrix* out) const;

  // Convenience wrapper returning a fresh matrix.
  DenseMatrix Multiply(const DenseMatrix& x) const;

  // out = thisᵀ × x without materializing the transpose. Checks
  // x.rows() == rows(); `out` is resized/zeroed internally and must not
  // alias x. Single-threaded results match Transpose().Multiply(x) bit for
  // bit; multi-threaded results combine per-shard partial sums and agree to
  // floating-point reassociation (~1e-12 relative).
  void MultiplyTransposed(const DenseMatrix& x, DenseMatrix* out) const;

  // Convenience wrapper returning a fresh matrix.
  DenseMatrix MultiplyTransposed(const DenseMatrix& x) const;

  // y = this × x for a vector. Checks x.size() == cols(); row-parallel and
  // bit-reproducible across thread counts like Multiply.
  void MultiplyVector(const std::vector<double>& x,
                      std::vector<double>* y) const;

  // Row sums; for a 0/1 symmetric adjacency matrix these are node degrees.
  std::vector<double> RowSums() const;

  // Diagonal entries (zero when absent).
  std::vector<double> DiagonalEntries() const;

  // Entry lookup by binary search within the row. O(log nnz_row).
  double At(Index row, Index col) const;

  // Non-owning views over this matrix's storage: the whole matrix, or the
  // row panel [row_begin, row_end). The view stays valid only while this
  // matrix is alive and unmodified.
  CsrPanelView View() const;
  CsrPanelView PanelView(Index row_begin, Index row_end) const;

  SparseMatrix Transpose() const;

  // Structural + numeric symmetry test (exact comparison).
  bool IsSymmetric() const;

  // Scales all stored values by `factor`.
  void Scale(double factor);

  // Overwrites every stored value with `value` (the structure is unchanged).
  // Graph::FromEdges uses this to collapse duplicate unweighted edges that
  // FromTriplets summed back to weight 1 without a second assembly pass.
  void SetAllValues(double value);

  DenseMatrix ToDense() const;

 private:
  Index rows_;
  Index cols_;
  std::vector<Index> row_ptr_;   // size rows_ + 1
  std::vector<Index> col_idx_;   // size nnz, sorted within each row
  std::vector<double> values_;   // size nnz
};

// Explicit sparse × sparse product (row-wise with a dense accumulator).
// Memory and time are proportional to the *output* nnz, which grows roughly
// by a factor of the average degree per application — exactly the blow-up the
// paper's factorized summation avoids.
SparseMatrix SpGemm(const SparseMatrix& a, const SparseMatrix& b);

// a + scale·b for matrices with identical shapes.
SparseMatrix SpAdd(const SparseMatrix& a, const SparseMatrix& b,
                   double scale = 1.0);

}  // namespace fgr

#endif  // FGR_MATRIX_SPARSE_H_
