// Compressed-sparse-row (CSR) matrix of doubles.
//
// This is the workhorse for the n×n adjacency matrix W. The two operations
// that matter for the paper are:
//   * Multiply (SpMM): W × dense(n×k) in O(nnz · k) — the inner step of both
//     label propagation (Eq. 4) and the factorized path summation (Alg. 4.4);
//   * SpGemm: W × W as an explicit sparse product — only used by the
//     *unfactorized* baseline of Fig. 5b to show why materializing Wℓ is
//     infeasible.

#ifndef FGR_MATRIX_SPARSE_H_
#define FGR_MATRIX_SPARSE_H_

#include <cstdint>
#include <vector>

#include "matrix/dense.h"
#include "util/check.h"
#include "util/status.h"

namespace fgr {

// A (row, col, value) entry used to assemble CSR matrices.
struct Triplet {
  std::int64_t row = 0;
  std::int64_t col = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  using Index = std::int64_t;

  SparseMatrix() : rows_(0), cols_(0) {}

  // Assembles a CSR matrix from triplets; duplicate (row, col) entries are
  // summed. Triplets may arrive in any order.
  static SparseMatrix FromTriplets(Index rows, Index cols,
                                   std::vector<Triplet> triplets);

  // Adopts pre-assembled CSR arrays without copying or re-sorting — the
  // O(read) path for the .fgrbin binary cache. The arrays are validated
  // (monotone row_ptr bracketed by [0, nnz], strictly ascending in-range
  // columns per row, matching lengths) because they typically come from
  // disk; a malformed input yields an error Status, never a crash.
  static Result<SparseMatrix> FromCsr(Index rows, Index cols,
                                      std::vector<Index> row_ptr,
                                      std::vector<Index> col_idx,
                                      std::vector<double> values);

  // Diagonal matrix with the given entries.
  static SparseMatrix Diagonal(const std::vector<double>& diagonal);

  static SparseMatrix Identity(Index n);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(values_.size()); }

  const std::vector<Index>& row_ptr() const { return row_ptr_; }
  const std::vector<Index>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  // out = this × x. Checks x.rows() == cols(); `out` is resized/zeroed
  // internally and must not alias x. Row-parallel under the ParallelFor
  // backend with nnz-balanced shard boundaries (ShardByWeight over row_ptr),
  // so skewed degree sequences do not serialize on the hub rows; results are
  // bit-identical for any thread count because each output row is
  // accumulated by exactly one worker in serial order.
  void Multiply(const DenseMatrix& x, DenseMatrix* out) const;

  // Convenience wrapper returning a fresh matrix.
  DenseMatrix Multiply(const DenseMatrix& x) const;

  // out = thisᵀ × x without materializing the transpose. Checks
  // x.rows() == rows(); `out` is resized/zeroed internally and must not
  // alias x. Single-threaded results match Transpose().Multiply(x) bit for
  // bit; multi-threaded results combine per-shard partial sums and agree to
  // floating-point reassociation (~1e-12 relative).
  void MultiplyTransposed(const DenseMatrix& x, DenseMatrix* out) const;

  // Convenience wrapper returning a fresh matrix.
  DenseMatrix MultiplyTransposed(const DenseMatrix& x) const;

  // y = this × x for a vector. Checks x.size() == cols(); row-parallel and
  // bit-reproducible across thread counts like Multiply.
  void MultiplyVector(const std::vector<double>& x,
                      std::vector<double>* y) const;

  // Row sums; for a 0/1 symmetric adjacency matrix these are node degrees.
  std::vector<double> RowSums() const;

  // Diagonal entries (zero when absent).
  std::vector<double> DiagonalEntries() const;

  // Entry lookup by binary search within the row. O(log nnz_row).
  double At(Index row, Index col) const;

  SparseMatrix Transpose() const;

  // Structural + numeric symmetry test (exact comparison).
  bool IsSymmetric() const;

  // Scales all stored values by `factor`.
  void Scale(double factor);

  // Overwrites every stored value with `value` (the structure is unchanged).
  // Graph::FromEdges uses this to collapse duplicate unweighted edges that
  // FromTriplets summed back to weight 1 without a second assembly pass.
  void SetAllValues(double value);

  DenseMatrix ToDense() const;

 private:
  Index rows_;
  Index cols_;
  std::vector<Index> row_ptr_;   // size rows_ + 1
  std::vector<Index> col_idx_;   // size nnz, sorted within each row
  std::vector<double> values_;   // size nnz
};

// Explicit sparse × sparse product (row-wise with a dense accumulator).
// Memory and time are proportional to the *output* nnz, which grows roughly
// by a factor of the average degree per application — exactly the blow-up the
// paper's factorized summation avoids.
SparseMatrix SpGemm(const SparseMatrix& a, const SparseMatrix& b);

// a + scale·b for matrices with identical shapes.
SparseMatrix SpAdd(const SparseMatrix& a, const SparseMatrix& b,
                   double scale = 1.0);

}  // namespace fgr

#endif  // FGR_MATRIX_SPARSE_H_
