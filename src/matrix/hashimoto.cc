#include "matrix/hashimoto.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace fgr {

DirectedEdgeSpace::DirectedEdgeSpace(const Graph& graph) {
  const SparseMatrix& w = graph.adjacency();
  const std::int64_t n = graph.num_nodes();
  tails_.reserve(static_cast<std::size_t>(w.nnz()));
  heads_.reserve(static_cast<std::size_t>(w.nnz()));
  tail_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  // CSR order of the adjacency matrix is already (tail, head)-sorted.
  for (NodeId u = 0; u < n; ++u) {
    tail_offsets_[static_cast<std::size_t>(u)] =
        static_cast<std::int64_t>(tails_.size());
    for (auto p = w.row_ptr()[static_cast<std::size_t>(u)];
         p < w.row_ptr()[static_cast<std::size_t>(u) + 1]; ++p) {
      tails_.push_back(u);
      heads_.push_back(w.col_idx()[static_cast<std::size_t>(p)]);
    }
  }
  tail_offsets_[static_cast<std::size_t>(n)] =
      static_cast<std::int64_t>(tails_.size());
}

std::int64_t DirectedEdgeSpace::StateOf(NodeId u, NodeId v) const {
  FGR_CHECK(u >= 0 &&
            u + 1 < static_cast<NodeId>(tail_offsets_.size()));
  const auto begin = heads_.begin() + tail_offsets_[static_cast<std::size_t>(u)];
  const auto end = heads_.begin() + tail_offsets_[static_cast<std::size_t>(u) + 1];
  const auto it = std::lower_bound(begin, end, v);
  FGR_CHECK(it != end && *it == v)
      << "no directed edge " << u << "->" << v;
  return static_cast<std::int64_t>(it - heads_.begin());
}

SparseMatrix BuildHashimotoMatrix(const Graph& graph,
                                  const DirectedEdgeSpace& edges) {
  const std::int64_t states = edges.num_states();
  std::vector<Triplet> triplets;
  for (std::int64_t s = 0; s < states; ++s) {
    const NodeId u = edges.tail(s);
    const NodeId v = edges.head(s);
    // Successors: (v→w) for every neighbor w of v except backtracking to u.
    for (NodeId w : graph.Neighbors(v)) {
      if (w == u) continue;
      triplets.push_back({s, edges.StateOf(v, w), 1.0});
    }
  }
  return SparseMatrix::FromTriplets(states, states, std::move(triplets));
}

SparseMatrix NbPathCountsViaHashimoto(const Graph& graph, int length) {
  FGR_CHECK_GE(length, 1);
  const DirectedEdgeSpace edges(graph);
  const SparseMatrix b = BuildHashimotoMatrix(graph, edges);

  // B^(length−1) over the augmented state space.
  SparseMatrix b_power = SparseMatrix::Identity(edges.num_states());
  for (int step = 1; step < length; ++step) {
    b_power = SpGemm(b_power, b);
  }

  // Aggregate states back to node pairs: (tail of source, head of target).
  std::vector<Triplet> counts;
  counts.reserve(static_cast<std::size_t>(b_power.nnz()));
  for (std::int64_t s = 0; s < b_power.rows(); ++s) {
    for (auto p = b_power.row_ptr()[static_cast<std::size_t>(s)];
         p < b_power.row_ptr()[static_cast<std::size_t>(s) + 1]; ++p) {
      const std::int64_t t = b_power.col_idx()[static_cast<std::size_t>(p)];
      counts.push_back({edges.tail(s), edges.head(t),
                        b_power.values()[static_cast<std::size_t>(p)]});
    }
  }
  return SparseMatrix::FromTriplets(graph.num_nodes(), graph.num_nodes(),
                                    std::move(counts));
}

}  // namespace fgr
