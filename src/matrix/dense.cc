#include "matrix/dense.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fgr {

DenseMatrix DenseMatrix::WithPaddedStride(Index rows, Index cols) {
  DenseMatrix result;
  FGR_CHECK_GE(rows, 0);
  FGR_CHECK_GE(cols, 0);
  result.rows_ = rows;
  result.cols_ = cols;
  // 8 doubles = 64 bytes: rounding the stride to a full cache line keeps
  // every row start on the buffer's 64-byte alignment.
  result.stride_ = cols == 0 ? 0 : (cols + 7) / 8 * 8;
  result.data_.assign(static_cast<std::size_t>(rows * result.stride_), 0.0);
  return result;
}

DenseMatrix DenseMatrix::FromRows(
    std::initializer_list<std::initializer_list<double>> rows) {
  const Index r = static_cast<Index>(rows.size());
  FGR_CHECK_GT(r, 0);
  const Index c = static_cast<Index>(rows.begin()->size());
  DenseMatrix result(r, c);
  Index i = 0;
  for (const auto& row : rows) {
    FGR_CHECK_EQ(static_cast<Index>(row.size()), c)
        << "ragged initializer row " << i;
    Index j = 0;
    for (double value : row) result(i, j++) = value;
    ++i;
  }
  return result;
}

DenseMatrix DenseMatrix::Identity(Index n) {
  DenseMatrix result(n, n);
  for (Index i = 0; i < n; ++i) result(i, i) = 1.0;
  return result;
}

DenseMatrix DenseMatrix::Constant(Index rows, Index cols, double value) {
  DenseMatrix result(rows, cols);
  result.Fill(value);
  return result;
}

// Writing the pad lanes in SetZero/Fill is allowed (they are storage, not
// data); everything that *reads* must go row-wise below.
void DenseMatrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

void DenseMatrix::Fill(double value) {
  for (Index i = 0; i < rows_; ++i) {
    double* row = RowPtr(i);
    for (Index j = 0; j < cols_; ++j) row[j] = value;
  }
}

void DenseMatrix::Add(const DenseMatrix& other) {
  FGR_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (Index i = 0; i < rows_; ++i) {
    double* row = RowPtr(i);
    const double* o_row = other.RowPtr(i);
    for (Index j = 0; j < cols_; ++j) row[j] += o_row[j];
  }
}

void DenseMatrix::Sub(const DenseMatrix& other) {
  FGR_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (Index i = 0; i < rows_; ++i) {
    double* row = RowPtr(i);
    const double* o_row = other.RowPtr(i);
    for (Index j = 0; j < cols_; ++j) row[j] -= o_row[j];
  }
}

void DenseMatrix::Scale(double factor) {
  for (Index i = 0; i < rows_; ++i) {
    double* row = RowPtr(i);
    for (Index j = 0; j < cols_; ++j) row[j] *= factor;
  }
}

void DenseMatrix::AddScaled(const DenseMatrix& other, double factor) {
  FGR_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (Index i = 0; i < rows_; ++i) {
    double* row = RowPtr(i);
    const double* o_row = other.RowPtr(i);
    for (Index j = 0; j < cols_; ++j) row[j] += factor * o_row[j];
  }
}

void DenseMatrix::AddConstant(double value) {
  for (Index i = 0; i < rows_; ++i) {
    double* row = RowPtr(i);
    for (Index j = 0; j < cols_; ++j) row[j] += value;
  }
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix result(cols_, rows_);
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = 0; j < cols_; ++j) result(j, i) = (*this)(i, j);
  }
  return result;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  FGR_CHECK_EQ(cols_, other.rows_)
      << "dense multiply shape mismatch: " << rows_ << "x" << cols_ << " * "
      << other.rows_ << "x" << other.cols_;
  DenseMatrix result(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop contiguous in both inputs.
  for (Index i = 0; i < rows_; ++i) {
    double* out_row = result.RowPtr(i);
    const double* a_row = RowPtr(i);
    for (Index k = 0; k < cols_; ++k) {
      const double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.RowPtr(k);
      for (Index j = 0; j < other.cols_; ++j) out_row[j] += a * b_row[j];
    }
  }
  return result;
}

DenseMatrix DenseMatrix::Power(int p) const {
  FGR_CHECK_EQ(rows_, cols_) << "Power() requires a square matrix";
  FGR_CHECK_GE(p, 0);
  DenseMatrix result = Identity(rows_);
  // Plain repeated multiplication: p is tiny (path lengths <= ~10) and the
  // DCE gradient needs all intermediate powers anyway.
  for (int step = 0; step < p; ++step) result = result.Multiply(*this);
  return result;
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (Index i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (Index j = 0; j < cols_; ++j) sum += row[j] * row[j];
  }
  return std::sqrt(sum);
}

double DenseMatrix::MaxAbs() const {
  double best = 0.0;
  for (Index i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (Index j = 0; j < cols_; ++j) best = std::max(best, std::fabs(row[j]));
  }
  return best;
}

double DenseMatrix::Sum() const {
  double sum = 0.0;
  for (Index i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (Index j = 0; j < cols_; ++j) sum += row[j];
  }
  return sum;
}

std::vector<double> DenseMatrix::RowSums() const {
  std::vector<double> sums(static_cast<std::size_t>(rows_), 0.0);
  for (Index i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double sum = 0.0;
    for (Index j = 0; j < cols_; ++j) sum += row[j];
    sums[static_cast<std::size_t>(i)] = sum;
  }
  return sums;
}

std::vector<double> DenseMatrix::ColSums() const {
  std::vector<double> sums(static_cast<std::size_t>(cols_), 0.0);
  for (Index i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (Index j = 0; j < cols_; ++j) sums[static_cast<std::size_t>(j)] += row[j];
  }
  return sums;
}

DenseMatrix::Index DenseMatrix::ArgmaxInRow(Index i) const {
  FGR_CHECK(i >= 0 && i < rows_);
  FGR_CHECK_GT(cols_, 0);
  const double* row = RowPtr(i);
  Index best = 0;
  for (Index j = 1; j < cols_; ++j) {
    if (row[j] > row[best]) best = j;
  }
  return best;
}

std::string DenseMatrix::ToString(int precision) const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  for (Index i = 0; i < rows_; ++i) {
    out << (i == 0 ? "[" : " ");
    for (Index j = 0; j < cols_; ++j) {
      out << (j == 0 ? "[" : ", ") << (*this)(i, j);
    }
    out << "]" << (i + 1 == rows_ ? "]" : "\n");
  }
  return out.str();
}

double FrobeniusDistance(const DenseMatrix& a, const DenseMatrix& b) {
  FGR_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double sum = 0.0;
  for (DenseMatrix::Index i = 0; i < a.rows(); ++i) {
    const double* pa = a.RowPtr(i);
    const double* pb = b.RowPtr(i);
    for (DenseMatrix::Index j = 0; j < a.cols(); ++j) {
      const double diff = pa[j] - pb[j];
      sum += diff * diff;
    }
  }
  return std::sqrt(sum);
}

bool AllClose(const DenseMatrix& a, const DenseMatrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (DenseMatrix::Index i = 0; i < a.rows(); ++i) {
    for (DenseMatrix::Index j = 0; j < a.cols(); ++j) {
      if (std::fabs(a(i, j) - b(i, j)) > tol) return false;
    }
  }
  return true;
}

}  // namespace fgr
