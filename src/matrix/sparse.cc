#include "matrix/sparse.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <utility>

#include "matrix/kernels/kernels.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/parallel.h"

namespace fgr {

void CsrPanelView::MultiplyInto(const DenseMatrix& x, DenseMatrix* out) const {
  FGR_CHECK_EQ(cols_, x.rows()) << "SpMM shape mismatch";
  FGR_CHECK(out != nullptr);
  FGR_CHECK(out != &x) << "SpMM output must not alias the input";
  FGR_CHECK_EQ(out->cols(), x.cols());
  FGR_CHECK_GE(out->rows(), first_row_ + rows_);
  if (rows_ == 0) return;
  FGR_TRACE_SPAN("kernel/spmm");
  obs::AddCounter(obs::PipelineCounter::kKernelSpmmCalls, 1);
  const Index k = x.cols();
  // nnz-balanced shards: a row-count split stalls on hub rows of power-law
  // graphs; splitting by row_ptr prefix sums gives every worker the same
  // number of multiply-adds. Each row is still written by exactly one
  // worker, so results stay bit-identical at any thread count for a fixed
  // kernel variant (dispatch: matrix/kernels). Unit-weight views
  // (values_ == nullptr) take a kernel path with no values load at all;
  // 1.0·x == x exactly, so unit and weighted panels agree bit for bit.
  const kernels::KernelTable& kt = kernels::ActiveKernels();
  const kernels::Csr csr{row_ptr_, col_idx_, values_};
  const double* x_base = x.raw();
  const Index x_stride = x.stride();
  double* out_base = out->raw() + first_row_ * out->stride();
  const Index out_stride = out->stride();
  ParallelForShards(
      ShardByWeight(row_ptr_, rows_, NumShards(rows_)),
      [&](Index row_begin, Index row_end, int /*shard*/) {
        kt.spmm(csr, row_begin, row_end, x_base, x_stride, out_base,
                out_stride, k);
      });
}

void CsrPanelView::MultiplyTransposedAddInto(const DenseMatrix& x,
                                             DenseMatrix* out) const {
  FGR_CHECK(out != nullptr);
  FGR_CHECK(out != &x) << "SpMM output must not alias the input";
  FGR_CHECK_GE(x.rows(), first_row_ + rows_);
  FGR_CHECK_EQ(out->rows(), cols_);
  FGR_CHECK_EQ(out->cols(), x.cols());
  FGR_TRACE_SPAN("kernel/spmm_t_add");
  obs::AddCounter(obs::PipelineCounter::kKernelSpmmTCalls, 1);
  const Index k = x.cols();
  const Index base = row_ptr_[0];
  // Rows of the panel scatter into rows of the transposed product, so
  // row-parallelism needs per-shard output buffers; they are combined in
  // shard order, which keeps results deterministic for a fixed thread
  // count. Shard boundaries are nnz-balanced so hub rows do not serialize
  // the scatter. The scatter is column-tiled: each shard's partial buffer
  // covers one L2-sized tile of columns instead of a full cols×k matrix
  // (the historical layout), and all scratch comes from the calling
  // thread's arena so repeated calls perform no heap allocations. Columns
  // ascend within each row, so per-row cursors sweep every entry exactly
  // once across the ascending tiles, and each output row still receives
  // its contributions in ascending source-row order — the serial
  // full-width window is bit-identical to the historical direct scatter.
  const std::vector<Index> boundaries =
      ShardByWeight(row_ptr_, rows_, NumShards(rows_));
  const int shards = static_cast<int>(boundaries.size()) - 1;
  if (shards <= 0) return;
  const kernels::KernelTable& kt = kernels::ActiveKernels();
  const kernels::Csr csr{row_ptr_, col_idx_, values_};
  const double* x_base = x.raw() + first_row_ * x.stride();
  const Index x_stride = x.stride();
  ArenaScope scope(ThreadLocalArena());
  Index* cursors = scope.AllocateArray<Index>(static_cast<std::size_t>(rows_));
  for (Index i = 0; i < rows_; ++i) cursors[i] = row_ptr_[i] - base;
  if (shards == 1) {
    kt.spmm_t_add(csr, 0, rows_, cursors, x_base, x_stride, out->raw(),
                  out->stride(), k, 0, cols_);
    return;
  }
  // ~256 KB of scratch per shard: tall enough to amortize the per-tile
  // fork/join, small enough to stay L2-resident during the scatter.
  constexpr Index kTileScratchDoubles = 32768;
  const Index tile_cols = std::min<Index>(
      cols_, std::max<Index>(512, kTileScratchDoubles / std::max<Index>(k, 1)));
  const Index tile_elems = tile_cols * k;
  double* scratch = scope.AllocateArray<double>(
      static_cast<std::size_t>(shards) * static_cast<std::size_t>(tile_elems));
  bool* active = scope.AllocateArray<bool>(static_cast<std::size_t>(shards));
  for (Index c0 = 0; c0 < cols_; c0 += tile_cols) {
    const Index c1 = std::min(cols_, c0 + tile_cols);
    ParallelForShards(boundaries, [&](Index lo, Index hi, int shard) {
      // Entries before a cursor were consumed by earlier tiles, so the
      // cursor's own column decides whether the shard has work here; idle
      // shards skip the zeroing and are skipped again by the reduction.
      bool has_work = false;
      for (Index i = lo; i < hi; ++i) {
        const Index p = cursors[i];
        if (p < row_ptr_[i + 1] - base && col_idx_[p] < c1) {
          has_work = true;
          break;
        }
      }
      active[shard] = has_work;
      if (!has_work) return;
      double* buf = scratch + shard * tile_elems;
      std::fill(buf, buf + (c1 - c0) * k, 0.0);
      kt.spmm_t_add(csr, lo, hi, cursors, x_base, x_stride, buf, k, k, c0, c1);
    });
    ParallelFor(c0, c1, [&](Index c) {
      double* out_row = out->RowPtr(c);
      for (int shard = 0; shard < shards; ++shard) {
        if (!active[shard]) continue;
        const double* p_row = scratch + shard * tile_elems + (c - c0) * k;
        for (Index j = 0; j < k; ++j) out_row[j] += p_row[j];
      }
    });
  }
}

void CsrPanelView::RowSumsInto(double* out) const {
  if (values_ == nullptr) {
    // Unit weights: the row sum is the entry count. Small integers are
    // exact doubles, so this matches summing explicit 1.0s bit for bit.
    // This fast path stays in the driver — the kernel tables only see
    // weighted panels.
    ParallelFor(0, rows_, [&](Index i) {
      out[i] = static_cast<double>(row_ptr_[i + 1] - row_ptr_[i]);
    });
    return;
  }
  if (rows_ == 0) return;
  FGR_TRACE_SPAN("kernel/row_sums");
  obs::AddCounter(obs::PipelineCounter::kKernelRowSumsCalls, 1);
  const kernels::KernelTable& kt = kernels::ActiveKernels();
  const kernels::Csr csr{row_ptr_, col_idx_, values_};
  ParallelForShards(ShardByWeight(row_ptr_, rows_, NumShards(rows_)),
                    [&](Index row_begin, Index row_end, int /*shard*/) {
                      kt.row_sums(csr, row_begin, row_end, out);
                    });
}

void CsrPanelView::MultiplyVectorInto(const std::vector<double>& x,
                                      std::vector<double>* y) const {
  FGR_CHECK_EQ(cols_, static_cast<Index>(x.size())) << "SpMV shape mismatch";
  FGR_CHECK(y != nullptr);
  FGR_CHECK(y != &x) << "SpMV output must not alias the input";
  FGR_CHECK_GE(static_cast<Index>(y->size()), first_row_ + rows_);
  if (rows_ == 0) return;
  FGR_TRACE_SPAN("kernel/spmv");
  obs::AddCounter(obs::PipelineCounter::kKernelSpmvCalls, 1);
  const kernels::KernelTable& kt = kernels::ActiveKernels();
  const kernels::Csr csr{row_ptr_, col_idx_, values_};
  const double* x_base = x.data();
  double* y_base = y->data() + first_row_;
  ParallelForShards(ShardByWeight(row_ptr_, rows_, NumShards(rows_)),
                    [&](Index row_begin, Index row_end, int /*shard*/) {
                      kt.spmv(csr, row_begin, row_end, x_base, y_base);
                    });
}

SparseMatrix SparseMatrix::FromTriplets(Index rows, Index cols,
                                        std::vector<Triplet> triplets) {
  FGR_CHECK_GE(rows, 0);
  FGR_CHECK_GE(cols, 0);
  SparseMatrix result;
  result.rows_ = rows;
  result.cols_ = cols;
  result.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);

  for (const Triplet& t : triplets) {
    FGR_CHECK(t.row >= 0 && t.row < rows) << "triplet row " << t.row;
    FGR_CHECK(t.col >= 0 && t.col < cols) << "triplet col " << t.col;
  }

  // Counting sort by row, then sort each row segment by column and merge
  // duplicates. This is O(nnz log d) and avoids a global sort.
  for (const Triplet& t : triplets) {
    ++result.row_ptr_[static_cast<std::size_t>(t.row) + 1];
  }
  for (std::size_t i = 1; i < result.row_ptr_.size(); ++i) {
    result.row_ptr_[i] += result.row_ptr_[i - 1];
  }
  std::vector<Index> cursor(result.row_ptr_.begin(),
                            result.row_ptr_.end() - 1);
  std::vector<Index> cols_tmp(triplets.size());
  std::vector<double> values_tmp(triplets.size());
  for (const Triplet& t : triplets) {
    const Index pos = cursor[static_cast<std::size_t>(t.row)]++;
    cols_tmp[static_cast<std::size_t>(pos)] = t.col;
    values_tmp[static_cast<std::size_t>(pos)] = t.value;
  }

  // Per-row sort + duplicate merge, compacted to the front of each row
  // segment. Rows are independent, so this phase is row-parallel; each row
  // runs the same serial code on per-shard scratch buffers (reused across
  // rows, cleared per row), keeping assembly bit-reproducible at any thread
  // count without per-row allocations.
  std::vector<Index> unique_counts(static_cast<std::size_t>(rows), 0);
  ParallelForShards(
      0, rows, NumShards(rows, /*grain=*/256),
      [&](Index row_begin, Index row_end, int /*shard*/) {
        std::vector<Index> order;
        std::vector<Index> merged_cols;
        std::vector<double> merged_values;
        for (Index r = row_begin; r < row_end; ++r) {
          const Index begin = result.row_ptr_[static_cast<std::size_t>(r)];
          const Index end = result.row_ptr_[static_cast<std::size_t>(r) + 1];
          if (begin == end) continue;
          order.resize(static_cast<std::size_t>(end - begin));
          for (Index i = begin; i < end; ++i) {
            order[static_cast<std::size_t>(i - begin)] = i;
          }
          std::sort(order.begin(), order.end(), [&](Index a, Index b) {
            return cols_tmp[static_cast<std::size_t>(a)] <
                   cols_tmp[static_cast<std::size_t>(b)];
          });
          merged_cols.clear();
          merged_values.clear();
          for (Index idx : order) {
            const Index c = cols_tmp[static_cast<std::size_t>(idx)];
            const double v = values_tmp[static_cast<std::size_t>(idx)];
            if (!merged_cols.empty() && merged_cols.back() == c) {
              merged_values.back() += v;  // merge duplicate
            } else {
              merged_cols.push_back(c);
              merged_values.push_back(v);
            }
          }
          std::copy(merged_cols.begin(), merged_cols.end(),
                    cols_tmp.begin() + static_cast<std::ptrdiff_t>(begin));
          std::copy(merged_values.begin(), merged_values.end(),
                    values_tmp.begin() + static_cast<std::ptrdiff_t>(begin));
          unique_counts[static_cast<std::size_t>(r)] =
              static_cast<Index>(merged_cols.size());
        }
      });

  std::vector<Index> final_row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (Index r = 0; r < rows; ++r) {
    final_row_ptr[static_cast<std::size_t>(r) + 1] =
        final_row_ptr[static_cast<std::size_t>(r)] +
        unique_counts[static_cast<std::size_t>(r)];
  }
  const Index total = final_row_ptr[static_cast<std::size_t>(rows)];
  result.col_idx_.resize(static_cast<std::size_t>(total));
  result.values_.resize(static_cast<std::size_t>(total));
  ParallelFor(
      0, rows,
      [&](Index r) {
        const Index src = result.row_ptr_[static_cast<std::size_t>(r)];
        const Index dst = final_row_ptr[static_cast<std::size_t>(r)];
        const Index count = unique_counts[static_cast<std::size_t>(r)];
        std::copy_n(cols_tmp.begin() + static_cast<std::ptrdiff_t>(src), count,
                    result.col_idx_.begin() + static_cast<std::ptrdiff_t>(dst));
        std::copy_n(values_tmp.begin() + static_cast<std::ptrdiff_t>(src),
                    count,
                    result.values_.begin() + static_cast<std::ptrdiff_t>(dst));
      },
      /*grain=*/1024);
  result.row_ptr_ = std::move(final_row_ptr);
  return result;
}

Result<SparseMatrix> SparseMatrix::FromCsr(Index rows, Index cols,
                                           std::vector<Index> row_ptr,
                                           std::vector<Index> col_idx,
                                           std::vector<double> values) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("CSR dimensions must be non-negative");
  }
  if (static_cast<Index>(row_ptr.size()) != rows + 1) {
    return Status::InvalidArgument(
        "CSR row_ptr must have rows + 1 entries, got " +
        std::to_string(row_ptr.size()));
  }
  const Index nnz = static_cast<Index>(col_idx.size());
  if (static_cast<Index>(values.size()) != nnz) {
    return Status::InvalidArgument("CSR col_idx/values length mismatch");
  }
  if (row_ptr.front() != 0 || row_ptr.back() != nnz) {
    return Status::InvalidArgument("CSR row_ptr must span [0, nnz]");
  }
  // Per-shard validation: monotone row_ptr, strictly ascending in-range
  // columns within each row. First error (lowest row) wins.
  const int shards = NumShards(rows, /*grain=*/4096);
  std::vector<std::string> shard_error(static_cast<std::size_t>(shards));
  ParallelForShards(0, rows, shards, [&](Index lo, Index hi, int s) {
    for (Index r = lo; r < hi; ++r) {
      const Index begin = row_ptr[static_cast<std::size_t>(r)];
      const Index end = row_ptr[static_cast<std::size_t>(r) + 1];
      if (begin > end || begin < 0 || end > nnz) {
        shard_error[static_cast<std::size_t>(s)] =
            "non-monotone row_ptr at row " + std::to_string(r);
        return;
      }
      Index previous = -1;
      for (Index p = begin; p < end; ++p) {
        const Index c = col_idx[static_cast<std::size_t>(p)];
        if (c < 0 || c >= cols) {
          shard_error[static_cast<std::size_t>(s)] =
              "column " + std::to_string(c) + " out of range at row " +
              std::to_string(r);
          return;
        }
        if (c <= previous) {
          shard_error[static_cast<std::size_t>(s)] =
              "columns not strictly ascending in row " + std::to_string(r);
          return;
        }
        previous = c;
      }
    }
  });
  for (const std::string& error : shard_error) {
    if (!error.empty()) return Status::InvalidArgument("CSR: " + error);
  }
  SparseMatrix result;
  result.rows_ = rows;
  result.cols_ = cols;
  result.row_ptr_ = std::move(row_ptr);
  result.col_idx_ = std::move(col_idx);
  result.values_ = std::move(values);
  return result;
}

SparseMatrix SparseMatrix::Diagonal(const std::vector<double>& diagonal) {
  const Index n = static_cast<Index>(diagonal.size());
  SparseMatrix result;
  result.rows_ = n;
  result.cols_ = n;
  result.row_ptr_.resize(static_cast<std::size_t>(n) + 1);
  result.col_idx_.resize(static_cast<std::size_t>(n));
  result.values_ = diagonal;
  for (Index i = 0; i <= n; ++i) {
    result.row_ptr_[static_cast<std::size_t>(i)] = i;
  }
  for (Index i = 0; i < n; ++i) {
    result.col_idx_[static_cast<std::size_t>(i)] = i;
  }
  return result;
}

SparseMatrix SparseMatrix::Identity(Index n) {
  return Diagonal(std::vector<double>(static_cast<std::size_t>(n), 1.0));
}

void SparseMatrix::Multiply(const DenseMatrix& x, DenseMatrix* out) const {
  FGR_CHECK_EQ(cols_, x.rows()) << "SpMM shape mismatch";
  FGR_CHECK(out != nullptr);
  FGR_CHECK(out != &x) << "SpMM output must not alias the input";
  if (out->rows() != rows_ || out->cols() != x.cols()) {
    *out = DenseMatrix(rows_, x.cols());
  }
  View().MultiplyInto(x, out);
}

DenseMatrix SparseMatrix::Multiply(const DenseMatrix& x) const {
  DenseMatrix out;
  Multiply(x, &out);
  return out;
}

void SparseMatrix::MultiplyTransposed(const DenseMatrix& x,
                                      DenseMatrix* out) const {
  FGR_CHECK_EQ(rows_, x.rows()) << "transposed SpMM shape mismatch";
  FGR_CHECK(out != nullptr);
  FGR_CHECK(out != &x) << "SpMM output must not alias the input";
  if (out->rows() != cols_ || out->cols() != x.cols()) {
    *out = DenseMatrix(cols_, x.cols());
  } else {
    out->SetZero();
  }
  View().MultiplyTransposedAddInto(x, out);
}

DenseMatrix SparseMatrix::MultiplyTransposed(const DenseMatrix& x) const {
  DenseMatrix out;
  MultiplyTransposed(x, &out);
  return out;
}

void SparseMatrix::MultiplyVector(const std::vector<double>& x,
                                  std::vector<double>* y) const {
  FGR_CHECK_EQ(cols_, static_cast<Index>(x.size()))
      << "SpMV shape mismatch";
  FGR_CHECK(y != nullptr);
  FGR_CHECK(y != &x) << "SpMV output must not alias the input";
  y->assign(static_cast<std::size_t>(rows_), 0.0);
  View().MultiplyVectorInto(x, y);
}

std::vector<double> SparseMatrix::RowSums() const {
  std::vector<double> sums(static_cast<std::size_t>(rows_), 0.0);
  ParallelFor(0, rows_, [&](Index i) {
    double sum = 0.0;
    for (Index p = row_ptr_[static_cast<std::size_t>(i)];
         p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      sum += values_[static_cast<std::size_t>(p)];
    }
    sums[static_cast<std::size_t>(i)] = sum;
  });
  return sums;
}

std::vector<double> SparseMatrix::DiagonalEntries() const {
  FGR_CHECK_EQ(rows_, cols_);
  std::vector<double> diagonal(static_cast<std::size_t>(rows_), 0.0);
  for (Index i = 0; i < rows_; ++i) {
    diagonal[static_cast<std::size_t>(i)] = At(i, i);
  }
  return diagonal;
}

double SparseMatrix::At(Index row, Index col) const {
  FGR_CHECK(row >= 0 && row < rows_);
  FGR_CHECK(col >= 0 && col < cols_);
  const auto begin = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(row)];
  const auto end =
      col_idx_.begin() + row_ptr_[static_cast<std::size_t>(row) + 1];
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

CsrPanelView SparseMatrix::View() const { return PanelView(0, rows_); }

CsrPanelView SparseMatrix::PanelView(Index row_begin, Index row_end) const {
  FGR_CHECK(row_begin >= 0 && row_begin <= row_end && row_end <= rows_);
  // col_idx/values point at the panel's own first entry; the kernels index
  // them with row_ptr[r] - row_ptr[0], so the global slice lines up.
  const std::size_t base =
      static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(row_begin)]);
  return CsrPanelView(row_begin, row_end - row_begin, cols_,
                      row_ptr_.data() + row_begin, col_idx_.data() + base,
                      values_.data() + base);
}

SparseMatrix SparseMatrix::Transpose() const {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz()));
  for (Index i = 0; i < rows_; ++i) {
    for (Index p = row_ptr_[static_cast<std::size_t>(i)];
         p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      triplets.push_back({col_idx_[static_cast<std::size_t>(p)], i,
                          values_[static_cast<std::size_t>(p)]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

bool SparseMatrix::IsSymmetric() const {
  if (rows_ != cols_) return false;
  // Row-parallel with an early-out flag: each entry (i, j) looks up (j, i)
  // by binary search. This runs on every FromAdjacency call, including the
  // 30M-entry matrices the binary dataset cache reloads.
  std::atomic<bool> symmetric{true};
  ParallelForShards(
      ShardByWeight(row_ptr_, NumShards(rows_)),
      [&](Index row_begin, Index row_end, int /*shard*/) {
        for (Index i = row_begin; i < row_end; ++i) {
          if (!symmetric.load(std::memory_order_relaxed)) return;
          for (Index p = row_ptr_[static_cast<std::size_t>(i)];
               p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
            const Index j = col_idx_[static_cast<std::size_t>(p)];
            if (At(j, i) != values_[static_cast<std::size_t>(p)]) {
              symmetric.store(false, std::memory_order_relaxed);
              return;
            }
          }
        }
      });
  return symmetric.load(std::memory_order_relaxed);
}

void SparseMatrix::Scale(double factor) {
  for (double& value : values_) value *= factor;
}

void SparseMatrix::SetAllValues(double value) {
  ParallelFor(
      0, static_cast<Index>(values_.size()),
      [&](Index i) { values_[static_cast<std::size_t>(i)] = value; },
      /*grain=*/1 << 16);
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix result(rows_, cols_);
  for (Index i = 0; i < rows_; ++i) {
    for (Index p = row_ptr_[static_cast<std::size_t>(i)];
         p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      result(i, col_idx_[static_cast<std::size_t>(p)]) +=
          values_[static_cast<std::size_t>(p)];
    }
  }
  return result;
}

SparseMatrix SpGemm(const SparseMatrix& a, const SparseMatrix& b) {
  FGR_CHECK_EQ(a.cols(), b.rows()) << "SpGemm shape mismatch";
  using Index = SparseMatrix::Index;
  const Index rows = a.rows();
  const Index cols = b.cols();

  // Row-wise product with a dense accumulator + touched list (Gustavson).
  std::vector<double> accumulator(static_cast<std::size_t>(cols), 0.0);
  std::vector<bool> occupied(static_cast<std::size_t>(cols), false);
  std::vector<Index> touched;
  std::vector<Triplet> triplets;
  for (Index i = 0; i < rows; ++i) {
    touched.clear();
    for (Index pa = a.row_ptr()[static_cast<std::size_t>(i)];
         pa < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++pa) {
      const Index k = a.col_idx()[static_cast<std::size_t>(pa)];
      const double va = a.values()[static_cast<std::size_t>(pa)];
      for (Index pb = b.row_ptr()[static_cast<std::size_t>(k)];
           pb < b.row_ptr()[static_cast<std::size_t>(k) + 1]; ++pb) {
        const Index j = b.col_idx()[static_cast<std::size_t>(pb)];
        if (!occupied[static_cast<std::size_t>(j)]) {
          occupied[static_cast<std::size_t>(j)] = true;
          touched.push_back(j);
        }
        accumulator[static_cast<std::size_t>(j)] +=
            va * b.values()[static_cast<std::size_t>(pb)];
      }
    }
    for (Index j : touched) {
      triplets.push_back({i, j, accumulator[static_cast<std::size_t>(j)]});
      accumulator[static_cast<std::size_t>(j)] = 0.0;
      occupied[static_cast<std::size_t>(j)] = false;
    }
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

SparseMatrix SpAdd(const SparseMatrix& a, const SparseMatrix& b, double scale) {
  FGR_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  using Index = SparseMatrix::Index;
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index p = a.row_ptr()[static_cast<std::size_t>(i)];
         p < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++p) {
      triplets.push_back({i, a.col_idx()[static_cast<std::size_t>(p)],
                          a.values()[static_cast<std::size_t>(p)]});
    }
  }
  for (Index i = 0; i < b.rows(); ++i) {
    for (Index p = b.row_ptr()[static_cast<std::size_t>(i)];
         p < b.row_ptr()[static_cast<std::size_t>(i) + 1]; ++p) {
      triplets.push_back({i, b.col_idx()[static_cast<std::size_t>(p)],
                          scale * b.values()[static_cast<std::size_t>(p)]});
    }
  }
  return SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets));
}

}  // namespace fgr
