// AVX-512F kernel variant. This TU (alone) is compiled with -mavx512f; it
// must only be *called* after runtime dispatch confirms the CPU supports
// AVX-512F. Masked zmm loads/stores and the fused multiply-add used here
// all sit inside the F foundation subset, so no further AVX-512 extensions
// are required.

#include "matrix/kernels/kernels.h"

#ifdef FGR_HAVE_AVX512

#include <immintrin.h>

#include "matrix/kernels/kernels_simd_body.h"

namespace fgr {
namespace kernels {
namespace {

struct Avx512Policy {
  using Vec = __m512d;
  static constexpr Index kLanes = 8;

  static Vec Zero() { return _mm512_setzero_pd(); }
  static Vec Set1(double v) { return _mm512_set1_pd(v); }
  static Vec LoadU(const double* p) { return _mm512_loadu_pd(p); }
  static void StoreU(double* p, Vec v) { _mm512_storeu_pd(p, v); }
  static Vec Add(Vec a, Vec b) { return _mm512_add_pd(a, b); }
  static Vec Fmadd(Vec a, Vec b, Vec c) { return _mm512_fmadd_pd(a, b, c); }

  static __mmask8 TailMask(Index n) {
    return static_cast<__mmask8>((1u << n) - 1u);
  }
  // Masked-off lanes are zeroed on load and never touched on store, so
  // tails at a row's end cannot fault or clobber past column k.
  static Vec LoadTail(const double* p, Index n) {
    return _mm512_maskz_loadu_pd(TailMask(n), p);
  }
  static void StoreTail(double* p, Index n, Vec v) {
    _mm512_mask_storeu_pd(p, TailMask(n), v);
  }

  static Vec Gather(const double* base, const Index* idx) {
    const __m512i vi = _mm512_loadu_si512(idx);
    return _mm512_i64gather_pd(vi, base, 8);
  }

  static double ReduceAdd(Vec v) { return _mm512_reduce_add_pd(v); }
};

void Spmm(const Csr& csr, Index row_begin, Index row_end, const double* x,
          Index x_stride, double* out, Index out_stride, Index k) {
  SpmmDispatch<Avx512Policy>(csr, row_begin, row_end, x, x_stride, out,
                             out_stride, k);
}

void SpmmTAdd(const Csr& csr, Index row_begin, Index row_end, Index* cursors,
              const double* x, Index x_stride, double* out, Index out_stride,
              Index k, Index col_begin, Index col_end) {
  SpmmTAddDispatch<Avx512Policy>(csr, row_begin, row_end, cursors, x,
                                 x_stride, out, out_stride, k, col_begin,
                                 col_end);
}

void Spmv(const Csr& csr, Index row_begin, Index row_end, const double* x,
          double* y) {
  SpmvDispatch<Avx512Policy>(csr, row_begin, row_end, x, y);
}

void RowSums(const Csr& csr, Index row_begin, Index row_end, double* out) {
  RowSumsDispatch<Avx512Policy>(csr, row_begin, row_end, out);
}

}  // namespace

const KernelTable& Avx512KernelTable() {
  static const KernelTable table{Isa::kAvx512, &Spmm, &SpmmTAdd, &Spmv,
                                 &RowSums};
  return table;
}

}  // namespace kernels
}  // namespace fgr

#endif  // FGR_HAVE_AVX512
