// Runtime kernel dispatch: resolves once (test pin → FGR_KERNEL → widest
// CPU-supported variant), caches the table, and exposes the introspection
// surface fgrd and `fgr_cli kernels` print. This TU is compiled for the
// base target; only the variant TUs carry extended ISA flags.

#include "matrix/kernels/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/log.h"
#include "util/check.h"

namespace fgr {
namespace kernels {

const KernelTable& ScalarKernelTable();
#ifdef FGR_HAVE_AVX2
const KernelTable& Avx2KernelTable();
#endif
#ifdef FGR_HAVE_AVX512
const KernelTable& Avx512KernelTable();
#endif

namespace {

std::atomic<const KernelTable*> g_active{nullptr};

bool CpuSupports(Isa isa) {
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      // The AVX2 kernels use FMA, which is its own CPUID bit.
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return isa == Isa::kScalar;
#endif
}

const KernelTable* CompiledTable(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &ScalarKernelTable();
    case Isa::kAvx2:
#ifdef FGR_HAVE_AVX2
      return &Avx2KernelTable();
#else
      return nullptr;
#endif
    case Isa::kAvx512:
#ifdef FGR_HAVE_AVX512
      return &Avx512KernelTable();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Isa BestAvailable() {
  if (IsaAvailable(Isa::kAvx512)) return Isa::kAvx512;
  if (IsaAvailable(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

// FGR_KERNEL=scalar|avx2|avx512|auto. Unknown values and unavailable
// variants warn on stderr (once — Resolve runs once) and fall back to
// auto, so a misconfigured environment degrades loudly but correctly.
const KernelTable* Resolve() {
  const char* env = std::getenv("FGR_KERNEL");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    bool known = true;
    Isa want = Isa::kScalar;
    if (std::strcmp(env, "scalar") == 0) {
      want = Isa::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      want = Isa::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      want = Isa::kAvx512;
    } else {
      known = false;
      FGR_LOG(kWarn, "kernels")
          << "unknown FGR_KERNEL=" << env
          << " (want scalar|avx2|avx512|auto); using auto";
    }
    if (known) {
      if (IsaAvailable(want)) return CompiledTable(want);
      FGR_LOG(kWarn, "kernels")
          << "FGR_KERNEL=" << env << ' '
          << (IsaCompiled(want) ? "unsupported" : "not compiled in")
          << " on this build/CPU; falling back to "
          << IsaName(BestAvailable());
    }
  }
  return CompiledTable(BestAvailable());
}

}  // namespace

const KernelTable& ActiveKernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    const KernelTable* resolved = Resolve();
    const KernelTable* expected = nullptr;
    if (!g_active.compare_exchange_strong(expected, resolved,
                                          std::memory_order_acq_rel)) {
      resolved = expected;  // another thread won the race
    }
    table = resolved;
  }
  return *table;
}

Isa ActiveIsa() { return ActiveKernels().isa; }

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool IsaCompiled(Isa isa) { return CompiledTable(isa) != nullptr; }

bool IsaAvailable(Isa isa) { return IsaCompiled(isa) && CpuSupports(isa); }

const KernelTable& KernelsFor(Isa isa) {
  FGR_CHECK(IsaAvailable(isa))
      << "kernel variant " << IsaName(isa) << " is unavailable";
  return *CompiledTable(isa);
}

bool SetKernelIsaForTest(Isa isa) {
  if (!IsaAvailable(isa)) return false;
  g_active.store(CompiledTable(isa), std::memory_order_release);
  return true;
}

void ResetKernelIsaForTest() {
  g_active.store(nullptr, std::memory_order_release);
}

std::string DescribeKernels() {
  std::ostringstream out;
  out << "dispatched: " << IsaName(ActiveIsa());
  const char* env = std::getenv("FGR_KERNEL");
  if (env != nullptr && *env != '\0') out << " (FGR_KERNEL=" << env << ")";
  out << "\n";
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    out << IsaName(isa) << ": "
        << (IsaCompiled(isa) ? "compiled" : "not compiled");
    if (isa != Isa::kScalar && IsaCompiled(isa)) {
      out << (CpuSupports(isa) ? ", cpu-supported" : ", no cpu support");
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace kernels
}  // namespace fgr
