// Vectorized kernel backend for the CsrPanelView primitives.
//
// Every estimate/label/serve path funnels through four inner loops: SpMM
// (W × dense n×k), the fused transpose SpMM (Wᵀ × X scatter), SpMV, and
// weighted row sums. This layer provides those loops as flat-pointer
// kernels in three variants — portable scalar, AVX2+FMA, AVX-512F — behind
// a one-time runtime dispatch, so `sparse.cc` keeps owning sharding,
// shape checks, and determinism policy while the innermost k-wide loops
// run at the width the CPU offers.
//
// Dispatch order (resolved once, then cached):
//   1. SetKernelIsaForTest() override, when a test pinned a variant;
//   2. the FGR_KERNEL environment variable: scalar | avx2 | avx512 | auto
//      (unknown values warn and mean auto; a variant that is not compiled
//      in or not supported by this CPU warns and falls back);
//   3. auto: the widest variant both compiled in (FGR_WITH_SIMD, per-TU
//      -mavx2/-mavx512f) and reported by the CPU at runtime.
//
// Numeric contract (the PR 2 determinism contract, extended per variant):
//   * the scalar kernels are bit-identical to the historical loops in
//     sparse.cc — same iteration order, same mul-then-add rounding;
//   * the SIMD kernels keep the same per-row entry order but use FMA
//     (single rounding) for SpMM/transpose and lane-parallel accumulators
//     for SpMV/row sums, so results agree with scalar only to
//     kKernelVariantTolerance — exact iteration-order reassociation is
//     preserved for SpMM/transpose (FMA rounding is the only delta), and
//     SpMV/row-sum reductions additionally reassociate across lanes;
//   * for a FIXED variant, every kernel stays deterministic and the
//     sharding-level guarantees (bit-identical row-partitioned kernels at
//     any thread count, shard-order reductions) are untouched.
//
// All kernels tolerate `values == nullptr` (unit weights): multiplying by
// a literal 1.0 is bit-identical to multiplying by a stored 1.0 in every
// variant, so unit-weight and all-ones-weighted panels agree bit for bit.

#ifndef FGR_MATRIX_KERNELS_KERNELS_H_
#define FGR_MATRIX_KERNELS_KERNELS_H_

#include <cstdint>
#include <string>

namespace fgr {
namespace kernels {

using Index = std::int64_t;

// Agreement bound between kernel variants for one kernel application, as a
// relative tolerance against the magnitude of the accumulated row. FMA
// rounding and lane reassociation perturb a handful of ulps per
// accumulation step; 1e-12 is ~4 decimal orders above double epsilon and
// pinned (not derived) so a real numeric regression trips the tests.
inline constexpr double kKernelVariantTolerance = 1e-12;

enum class Isa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

// A CSR row panel in the CsrPanelView convention: `row_ptr` spans the
// panel's rows plus one and may carry an arbitrary base offset (a slice of
// a full row_ptr keeps its global values); col_idx / values hold the
// panel's own entries, indexed by row_ptr[r] - row_ptr[0]. `values` may be
// nullptr (unit weights). Columns are strictly ascending within a row.
struct Csr {
  const Index* row_ptr = nullptr;
  const Index* col_idx = nullptr;
  const double* values = nullptr;
};

// out[i·out_stride .. +k) = Σ_p values[p] · x[col_idx[p]·x_stride .. +k)
// for each panel row i in [row_begin, row_end), overwriting (not adding).
// `x` is the row-0 pointer of the dense operand (indexed by global
// column), `out` the pointer for panel row 0.
using SpmmFn = void (*)(const Csr& csr, Index row_begin, Index row_end,
                        const double* x, Index x_stride, double* out,
                        Index out_stride, Index k);

// Fused transpose scatter over a column window: for each panel row i in
// [row_begin, row_end), consumes the row's entries whose column lies in
// [col_begin, col_end) starting at cursors[i], adding
// values[p] · x[i·x_stride .. +k) into out[(col−col_begin)·out_stride ..).
// cursors[i] holds the row's next unconsumed entry (panel-local index,
// i.e. row_ptr[i] − row_ptr[0] initially) and is advanced past the window;
// columns ascend within a row, so successive ascending windows sweep each
// entry exactly once. A full-width window (0, cols) with out pointing at
// the real output reproduces the direct serial scatter.
using SpmmTAddFn = void (*)(const Csr& csr, Index row_begin, Index row_end,
                            Index* cursors, const double* x, Index x_stride,
                            double* out, Index out_stride, Index k,
                            Index col_begin, Index col_end);

// y[i] = Σ_p values[p] · x[col_idx[p]] for each panel row i in
// [row_begin, row_end). `x` is indexed by global column, `y` by panel row.
using SpmvFn = void (*)(const Csr& csr, Index row_begin, Index row_end,
                        const double* x, double* y);

// out[i] = Σ_p values[p] for each panel row i in [row_begin, row_end).
// Only called with values != nullptr — the unit-weight entry-count fast
// path stays in the driver.
using RowSumsFn = void (*)(const Csr& csr, Index row_begin, Index row_end,
                           double* out);

struct KernelTable {
  Isa isa = Isa::kScalar;
  SpmmFn spmm = nullptr;
  SpmmTAddFn spmm_t_add = nullptr;
  SpmvFn spmv = nullptr;
  RowSumsFn row_sums = nullptr;
};

// The dispatched table. First call resolves (test override → FGR_KERNEL →
// widest supported); later calls return the cached table. Thread-safe.
const KernelTable& ActiveKernels();

// The variant ActiveKernels() dispatches to.
Isa ActiveIsa();

// "scalar" / "avx2" / "avx512".
const char* IsaName(Isa isa);

// True when the variant's translation unit was compiled into this binary
// (FGR_WITH_SIMD plus compiler support).
bool IsaCompiled(Isa isa);

// True when the variant is compiled in AND this CPU reports the feature
// (AVX2+FMA for kAvx2, AVX-512F for kAvx512). kScalar is always available.
bool IsaAvailable(Isa isa);

// The table for one specific variant; CHECK-fails unless IsaAvailable.
// Tests use this to compare variants side by side without re-dispatching.
const KernelTable& KernelsFor(Isa isa);

// Pins ActiveKernels() to `isa` for the rest of the process (tests only).
// Returns false — and changes nothing — when the variant is unavailable.
bool SetKernelIsaForTest(Isa isa);

// Clears the test pin; the next ActiveKernels() re-resolves from the
// environment and CPU.
void ResetKernelIsaForTest();

// One line per variant: name, compiled?, cpu-supported?, dispatched?
// (What `fgr_cli kernels` prints and fgrd logs at startup.)
std::string DescribeKernels();

}  // namespace kernels
}  // namespace fgr

#endif  // FGR_MATRIX_KERNELS_KERNELS_H_
