// Portable scalar kernels — the reference variant.
//
// These loops are transcribed from the historical CsrPanelView inner loops
// and must stay bit-identical to them: same iteration order, separate
// multiply and add (no FMA contraction — the build targets base x86-64 for
// this TU), accumulation in source order. The SIMD variants are tested
// against this table under kKernelVariantTolerance, and
// FGR_KERNEL=scalar pins production behavior to it.

#include "matrix/kernels/kernels.h"

namespace fgr {
namespace kernels {
namespace {

// The weight accessor is a template parameter so unit-weight panels
// (values == nullptr) get a loop with no values load at all; 1.0·x == x
// exactly, so both instantiations produce identical bits.
template <typename ValueAt>
void SpmmImpl(const Csr& csr, Index row_begin, Index row_end, const double* x,
              Index x_stride, double* out, Index out_stride, Index k,
              ValueAt value_at) {
  const Index base = csr.row_ptr[0];
  for (Index i = row_begin; i < row_end; ++i) {
    double* out_row = out + i * out_stride;
    for (Index j = 0; j < k; ++j) out_row[j] = 0.0;
    const Index begin = csr.row_ptr[i] - base;
    const Index end = csr.row_ptr[i + 1] - base;
    for (Index p = begin; p < end; ++p) {
      const double v = value_at(p);
      const double* x_row = x + csr.col_idx[p] * x_stride;
      for (Index j = 0; j < k; ++j) out_row[j] += v * x_row[j];
    }
  }
}

void Spmm(const Csr& csr, Index row_begin, Index row_end, const double* x,
          Index x_stride, double* out, Index out_stride, Index k) {
  if (csr.values == nullptr) {
    SpmmImpl(csr, row_begin, row_end, x, x_stride, out, out_stride, k,
             [](Index) { return 1.0; });
  } else {
    SpmmImpl(csr, row_begin, row_end, x, x_stride, out, out_stride, k,
             [&csr](Index p) { return csr.values[p]; });
  }
}

template <typename ValueAt>
void SpmmTAddImpl(const Csr& csr, Index row_begin, Index row_end,
                  Index* cursors, const double* x, Index x_stride, double* out,
                  Index out_stride, Index k, Index col_begin, Index col_end,
                  ValueAt value_at) {
  const Index base = csr.row_ptr[0];
  for (Index i = row_begin; i < row_end; ++i) {
    const double* x_row = x + i * x_stride;
    const Index end = csr.row_ptr[i + 1] - base;
    Index p = cursors[i];
    for (; p < end && csr.col_idx[p] < col_end; ++p) {
      const double v = value_at(p);
      double* t_row = out + (csr.col_idx[p] - col_begin) * out_stride;
      for (Index j = 0; j < k; ++j) t_row[j] += v * x_row[j];
    }
    cursors[i] = p;
  }
}

void SpmmTAdd(const Csr& csr, Index row_begin, Index row_end, Index* cursors,
              const double* x, Index x_stride, double* out, Index out_stride,
              Index k, Index col_begin, Index col_end) {
  if (csr.values == nullptr) {
    SpmmTAddImpl(csr, row_begin, row_end, cursors, x, x_stride, out,
                 out_stride, k, col_begin, col_end, [](Index) { return 1.0; });
  } else {
    SpmmTAddImpl(csr, row_begin, row_end, cursors, x, x_stride, out,
                 out_stride, k, col_begin, col_end,
                 [&csr](Index p) { return csr.values[p]; });
  }
}

template <typename ValueAt>
void SpmvImpl(const Csr& csr, Index row_begin, Index row_end, const double* x,
              double* y, ValueAt value_at) {
  const Index base = csr.row_ptr[0];
  for (Index i = row_begin; i < row_end; ++i) {
    double sum = 0.0;
    const Index begin = csr.row_ptr[i] - base;
    const Index end = csr.row_ptr[i + 1] - base;
    for (Index p = begin; p < end; ++p) {
      sum += value_at(p) * x[csr.col_idx[p]];
    }
    y[i] = sum;
  }
}

void Spmv(const Csr& csr, Index row_begin, Index row_end, const double* x,
          double* y) {
  if (csr.values == nullptr) {
    SpmvImpl(csr, row_begin, row_end, x, y, [](Index) { return 1.0; });
  } else {
    SpmvImpl(csr, row_begin, row_end, x, y,
             [&csr](Index p) { return csr.values[p]; });
  }
}

void RowSums(const Csr& csr, Index row_begin, Index row_end, double* out) {
  const Index base = csr.row_ptr[0];
  for (Index i = row_begin; i < row_end; ++i) {
    double sum = 0.0;
    const Index begin = csr.row_ptr[i] - base;
    const Index end = csr.row_ptr[i + 1] - base;
    for (Index p = begin; p < end; ++p) sum += csr.values[p];
    out[i] = sum;
  }
}

}  // namespace

const KernelTable& ScalarKernelTable() {
  static const KernelTable table{Isa::kScalar, &Spmm, &SpmmTAdd, &Spmv,
                                 &RowSums};
  return table;
}

}  // namespace kernels
}  // namespace fgr
