// AVX2 + FMA kernel variant. This TU (alone) is compiled with
// -mavx2 -mfma; it must only be *called* after runtime dispatch confirms
// the CPU supports both features.

#include "matrix/kernels/kernels.h"

#ifdef FGR_HAVE_AVX2

#include <immintrin.h>

#include <cstdint>

#include "matrix/kernels/kernels_simd_body.h"

namespace fgr {
namespace kernels {
namespace {

// Lane masks for tails of n ∈ [1, 3] doubles: load from the table so lanes
// [0, n) read -1 (enabled) and the rest 0. Masked lanes are never touched
// in memory, so tail loads at a row's end cannot fault past column k.
alignas(32) constexpr std::int64_t kTailMaskTable[8] = {-1, -1, -1, -1,
                                                        0,  0,  0,  0};

struct Avx2Policy {
  using Vec = __m256d;
  static constexpr Index kLanes = 4;

  static Vec Zero() { return _mm256_setzero_pd(); }
  static Vec Set1(double v) { return _mm256_set1_pd(v); }
  static Vec LoadU(const double* p) { return _mm256_loadu_pd(p); }
  static void StoreU(double* p, Vec v) { _mm256_storeu_pd(p, v); }
  static Vec Add(Vec a, Vec b) { return _mm256_add_pd(a, b); }
  static Vec Fmadd(Vec a, Vec b, Vec c) { return _mm256_fmadd_pd(a, b, c); }

  static __m256i TailMask(Index n) {
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kTailMaskTable + (4 - n)));
  }
  static Vec LoadTail(const double* p, Index n) {
    return _mm256_maskload_pd(p, TailMask(n));
  }
  static void StoreTail(double* p, Index n, Vec v) {
    _mm256_maskstore_pd(p, TailMask(n), v);
  }

  static Vec Gather(const double* base, const Index* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm256_i64gather_pd(base, vi, 8);
  }

  static double ReduceAdd(Vec v) {
    // Fixed tree: (lane0 + lane2) + (lane1 + lane3) ... deterministic.
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d pair = _mm_add_pd(lo, hi);
    const __m128d swapped = _mm_unpackhi_pd(pair, pair);
    return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
  }
};

void Spmm(const Csr& csr, Index row_begin, Index row_end, const double* x,
          Index x_stride, double* out, Index out_stride, Index k) {
  SpmmDispatch<Avx2Policy>(csr, row_begin, row_end, x, x_stride, out,
                           out_stride, k);
}

void SpmmTAdd(const Csr& csr, Index row_begin, Index row_end, Index* cursors,
              const double* x, Index x_stride, double* out, Index out_stride,
              Index k, Index col_begin, Index col_end) {
  SpmmTAddDispatch<Avx2Policy>(csr, row_begin, row_end, cursors, x, x_stride,
                               out, out_stride, k, col_begin, col_end);
}

void Spmv(const Csr& csr, Index row_begin, Index row_end, const double* x,
          double* y) {
  SpmvDispatch<Avx2Policy>(csr, row_begin, row_end, x, y);
}

void RowSums(const Csr& csr, Index row_begin, Index row_end, double* out) {
  RowSumsDispatch<Avx2Policy>(csr, row_begin, row_end, out);
}

}  // namespace

const KernelTable& Avx2KernelTable() {
  static const KernelTable table{Isa::kAvx2, &Spmm, &SpmmTAdd, &Spmv,
                                 &RowSums};
  return table;
}

}  // namespace kernels
}  // namespace fgr

#endif  // FGR_HAVE_AVX2
