// Shared SIMD kernel bodies, parameterized by a vector-policy struct.
//
// The AVX2 and AVX-512 translation units each define a policy type
// (vector width, load/store, masked tail load/store, FMA, gather,
// horizontal reduce) and instantiate these templates; the kernel logic —
// iteration order, register blocking, cursor handling — lives here once.
// Only the per-TU policy files are compiled with extended ISA flags, so
// this header must stay intrinsic-free.
//
// Register blocking: k ∈ {2, 5, 10} dominates real workloads, so every
// k ≤ kMaxSpecializedK gets a specialization whose accumulators (or the
// hoisted x-row for the transpose scatter) live in vector registers across
// the whole per-row entry loop; a full vector covers lanes [0, kLanes) and
// a masked tail covers the remainder, so no load or store ever touches
// memory past column k. Larger k falls back to a generic strip-mined loop
// that streams through the output row per entry.
//
// Numeric notes (see kernels.h for the cross-variant contract): entry
// iteration order matches the scalar kernels exactly; FMA fuses each
// multiply-add into one rounding. For unit weights the kernels add x
// directly — fma(1.0, x, acc) rounds x·1.0 + acc once, which is exactly
// add(x, acc), so unit and all-ones-weighted panels agree bit for bit.

#ifndef FGR_MATRIX_KERNELS_KERNELS_SIMD_BODY_H_
#define FGR_MATRIX_KERNELS_KERNELS_SIMD_BODY_H_

#include "matrix/kernels/kernels.h"

namespace fgr {
namespace kernels {

inline constexpr int kMaxSpecializedK = 12;

// ---- SpMM: out rows overwritten with panel × x ----------------------------

template <typename P, int K, bool kUnit>
void SpmmRowsK(const Csr& csr, Index row_begin, Index row_end, const double* x,
               Index x_stride, double* out, Index out_stride) {
  constexpr int kL = static_cast<int>(P::kLanes);
  constexpr int NV = K / kL;
  constexpr int TAIL = K % kL;
  constexpr int NACC = NV + (TAIL != 0 ? 1 : 0);
  const Index base = csr.row_ptr[0];
  for (Index i = row_begin; i < row_end; ++i) {
    typename P::Vec acc[NACC];
    for (int c = 0; c < NACC; ++c) acc[c] = P::Zero();
    const Index begin = csr.row_ptr[i] - base;
    const Index end = csr.row_ptr[i + 1] - base;
    for (Index p = begin; p < end; ++p) {
      const double* x_row = x + csr.col_idx[p] * x_stride;
      if constexpr (kUnit) {
        for (int c = 0; c < NV; ++c) {
          acc[c] = P::Add(acc[c], P::LoadU(x_row + c * kL));
        }
        if constexpr (TAIL != 0) {
          acc[NV] = P::Add(acc[NV], P::LoadTail(x_row + NV * kL, TAIL));
        }
      } else {
        const typename P::Vec v = P::Set1(csr.values[p]);
        for (int c = 0; c < NV; ++c) {
          acc[c] = P::Fmadd(v, P::LoadU(x_row + c * kL), acc[c]);
        }
        if constexpr (TAIL != 0) {
          acc[NV] = P::Fmadd(v, P::LoadTail(x_row + NV * kL, TAIL), acc[NV]);
        }
      }
    }
    double* out_row = out + i * out_stride;
    for (int c = 0; c < NV; ++c) P::StoreU(out_row + c * kL, acc[c]);
    if constexpr (TAIL != 0) P::StoreTail(out_row + NV * kL, TAIL, acc[NV]);
  }
}

template <typename P, bool kUnit>
void SpmmRowsGeneric(const Csr& csr, Index row_begin, Index row_end,
                     const double* x, Index x_stride, double* out,
                     Index out_stride, Index k) {
  constexpr Index kL = P::kLanes;
  const Index full = k - k % kL;
  const Index tail = k - full;
  const Index base = csr.row_ptr[0];
  for (Index i = row_begin; i < row_end; ++i) {
    double* out_row = out + i * out_stride;
    for (Index j = 0; j < k; ++j) out_row[j] = 0.0;
    const Index begin = csr.row_ptr[i] - base;
    const Index end = csr.row_ptr[i + 1] - base;
    for (Index p = begin; p < end; ++p) {
      const double* x_row = x + csr.col_idx[p] * x_stride;
      if constexpr (kUnit) {
        for (Index j = 0; j < full; j += kL) {
          P::StoreU(out_row + j, P::Add(P::LoadU(out_row + j),
                                        P::LoadU(x_row + j)));
        }
        if (tail != 0) {
          P::StoreTail(out_row + full, tail,
                       P::Add(P::LoadTail(out_row + full, tail),
                              P::LoadTail(x_row + full, tail)));
        }
      } else {
        const typename P::Vec v = P::Set1(csr.values[p]);
        for (Index j = 0; j < full; j += kL) {
          P::StoreU(out_row + j,
                    P::Fmadd(v, P::LoadU(x_row + j), P::LoadU(out_row + j)));
        }
        if (tail != 0) {
          P::StoreTail(out_row + full, tail,
                       P::Fmadd(v, P::LoadTail(x_row + full, tail),
                                P::LoadTail(out_row + full, tail)));
        }
      }
    }
  }
}

// ---- Fused transpose scatter over a column window -------------------------

template <typename P, int K, bool kUnit>
void SpmmTAddRowsK(const Csr& csr, Index row_begin, Index row_end,
                   Index* cursors, const double* x, Index x_stride,
                   double* out, Index out_stride, Index col_begin,
                   Index col_end) {
  constexpr int kL = static_cast<int>(P::kLanes);
  constexpr int NV = K / kL;
  constexpr int TAIL = K % kL;
  constexpr int NX = NV + (TAIL != 0 ? 1 : 0);
  const Index base = csr.row_ptr[0];
  for (Index i = row_begin; i < row_end; ++i) {
    const Index end = csr.row_ptr[i + 1] - base;
    Index p = cursors[i];
    if (p >= end || csr.col_idx[p] >= col_end) continue;
    // The panel row is reused by every entry in the window: hoist it into
    // registers once instead of reloading per scatter target.
    const double* x_row = x + i * x_stride;
    typename P::Vec xv[NX];
    for (int c = 0; c < NV; ++c) xv[c] = P::LoadU(x_row + c * kL);
    if constexpr (TAIL != 0) xv[NV] = P::LoadTail(x_row + NV * kL, TAIL);
    for (; p < end && csr.col_idx[p] < col_end; ++p) {
      double* t_row = out + (csr.col_idx[p] - col_begin) * out_stride;
      if constexpr (kUnit) {
        for (int c = 0; c < NV; ++c) {
          P::StoreU(t_row + c * kL, P::Add(P::LoadU(t_row + c * kL), xv[c]));
        }
        if constexpr (TAIL != 0) {
          P::StoreTail(t_row + NV * kL, TAIL,
                       P::Add(P::LoadTail(t_row + NV * kL, TAIL), xv[NV]));
        }
      } else {
        const typename P::Vec v = P::Set1(csr.values[p]);
        for (int c = 0; c < NV; ++c) {
          P::StoreU(t_row + c * kL,
                    P::Fmadd(v, xv[c], P::LoadU(t_row + c * kL)));
        }
        if constexpr (TAIL != 0) {
          P::StoreTail(t_row + NV * kL, TAIL,
                       P::Fmadd(v, xv[NV],
                                P::LoadTail(t_row + NV * kL, TAIL)));
        }
      }
    }
    cursors[i] = p;
  }
}

template <typename P, bool kUnit>
void SpmmTAddRowsGeneric(const Csr& csr, Index row_begin, Index row_end,
                         Index* cursors, const double* x, Index x_stride,
                         double* out, Index out_stride, Index k,
                         Index col_begin, Index col_end) {
  constexpr Index kL = P::kLanes;
  const Index full = k - k % kL;
  const Index tail = k - full;
  const Index base = csr.row_ptr[0];
  for (Index i = row_begin; i < row_end; ++i) {
    const double* x_row = x + i * x_stride;
    const Index end = csr.row_ptr[i + 1] - base;
    Index p = cursors[i];
    for (; p < end && csr.col_idx[p] < col_end; ++p) {
      double* t_row = out + (csr.col_idx[p] - col_begin) * out_stride;
      if constexpr (kUnit) {
        for (Index j = 0; j < full; j += kL) {
          P::StoreU(t_row + j, P::Add(P::LoadU(t_row + j), P::LoadU(x_row + j)));
        }
        if (tail != 0) {
          P::StoreTail(t_row + full, tail,
                       P::Add(P::LoadTail(t_row + full, tail),
                              P::LoadTail(x_row + full, tail)));
        }
      } else {
        const typename P::Vec v = P::Set1(csr.values[p]);
        for (Index j = 0; j < full; j += kL) {
          P::StoreU(t_row + j,
                    P::Fmadd(v, P::LoadU(x_row + j), P::LoadU(t_row + j)));
        }
        if (tail != 0) {
          P::StoreTail(t_row + full, tail,
                       P::Fmadd(v, P::LoadTail(x_row + full, tail),
                                P::LoadTail(t_row + full, tail)));
        }
      }
    }
    cursors[i] = p;
  }
}

// ---- SpMV and weighted row sums -------------------------------------------

template <typename P, bool kUnit>
void SpmvRows(const Csr& csr, Index row_begin, Index row_end, const double* x,
              double* y) {
  constexpr Index kL = P::kLanes;
  const Index base = csr.row_ptr[0];
  for (Index i = row_begin; i < row_end; ++i) {
    const Index begin = csr.row_ptr[i] - base;
    const Index end = csr.row_ptr[i + 1] - base;
    typename P::Vec acc = P::Zero();
    Index p = begin;
    for (; p + kL <= end; p += kL) {
      const typename P::Vec gathered = P::Gather(x, csr.col_idx + p);
      if constexpr (kUnit) {
        acc = P::Add(acc, gathered);
      } else {
        acc = P::Fmadd(P::LoadU(csr.values + p), gathered, acc);
      }
    }
    double sum = P::ReduceAdd(acc);
    for (; p < end; ++p) {
      if constexpr (kUnit) {
        sum += x[csr.col_idx[p]];
      } else {
        sum += csr.values[p] * x[csr.col_idx[p]];
      }
    }
    y[i] = sum;
  }
}

template <typename P>
void RowSumsRows(const Csr& csr, Index row_begin, Index row_end, double* out) {
  constexpr Index kL = P::kLanes;
  const Index base = csr.row_ptr[0];
  for (Index i = row_begin; i < row_end; ++i) {
    const Index begin = csr.row_ptr[i] - base;
    const Index end = csr.row_ptr[i + 1] - base;
    typename P::Vec acc = P::Zero();
    Index p = begin;
    for (; p + kL <= end; p += kL) acc = P::Add(acc, P::LoadU(csr.values + p));
    double sum = P::ReduceAdd(acc);
    for (; p < end; ++p) sum += csr.values[p];
    out[i] = sum;
  }
}

// ---- Per-policy dispatchers (the KernelTable entry points) ----------------

template <typename P>
void SpmmDispatch(const Csr& csr, Index row_begin, Index row_end,
                  const double* x, Index x_stride, double* out,
                  Index out_stride, Index k) {
  const bool unit = csr.values == nullptr;
  switch (k) {
#define FGR_SPMM_CASE(K)                                                     \
  case K:                                                                    \
    if (unit) {                                                              \
      SpmmRowsK<P, K, true>(csr, row_begin, row_end, x, x_stride, out,       \
                            out_stride);                                     \
    } else {                                                                 \
      SpmmRowsK<P, K, false>(csr, row_begin, row_end, x, x_stride, out,      \
                             out_stride);                                    \
    }                                                                        \
    return;
    FGR_SPMM_CASE(1)
    FGR_SPMM_CASE(2)
    FGR_SPMM_CASE(3)
    FGR_SPMM_CASE(4)
    FGR_SPMM_CASE(5)
    FGR_SPMM_CASE(6)
    FGR_SPMM_CASE(7)
    FGR_SPMM_CASE(8)
    FGR_SPMM_CASE(9)
    FGR_SPMM_CASE(10)
    FGR_SPMM_CASE(11)
    FGR_SPMM_CASE(12)
#undef FGR_SPMM_CASE
    default:
      if (unit) {
        SpmmRowsGeneric<P, true>(csr, row_begin, row_end, x, x_stride, out,
                                 out_stride, k);
      } else {
        SpmmRowsGeneric<P, false>(csr, row_begin, row_end, x, x_stride, out,
                                  out_stride, k);
      }
  }
}

template <typename P>
void SpmmTAddDispatch(const Csr& csr, Index row_begin, Index row_end,
                      Index* cursors, const double* x, Index x_stride,
                      double* out, Index out_stride, Index k, Index col_begin,
                      Index col_end) {
  const bool unit = csr.values == nullptr;
  switch (k) {
#define FGR_SPMMT_CASE(K)                                                    \
  case K:                                                                    \
    if (unit) {                                                              \
      SpmmTAddRowsK<P, K, true>(csr, row_begin, row_end, cursors, x,         \
                                x_stride, out, out_stride, col_begin,        \
                                col_end);                                    \
    } else {                                                                 \
      SpmmTAddRowsK<P, K, false>(csr, row_begin, row_end, cursors, x,        \
                                 x_stride, out, out_stride, col_begin,       \
                                 col_end);                                   \
    }                                                                        \
    return;
    FGR_SPMMT_CASE(1)
    FGR_SPMMT_CASE(2)
    FGR_SPMMT_CASE(3)
    FGR_SPMMT_CASE(4)
    FGR_SPMMT_CASE(5)
    FGR_SPMMT_CASE(6)
    FGR_SPMMT_CASE(7)
    FGR_SPMMT_CASE(8)
    FGR_SPMMT_CASE(9)
    FGR_SPMMT_CASE(10)
    FGR_SPMMT_CASE(11)
    FGR_SPMMT_CASE(12)
#undef FGR_SPMMT_CASE
    default:
      if (unit) {
        SpmmTAddRowsGeneric<P, true>(csr, row_begin, row_end, cursors, x,
                                     x_stride, out, out_stride, k, col_begin,
                                     col_end);
      } else {
        SpmmTAddRowsGeneric<P, false>(csr, row_begin, row_end, cursors, x,
                                      x_stride, out, out_stride, k, col_begin,
                                      col_end);
      }
  }
}

template <typename P>
void SpmvDispatch(const Csr& csr, Index row_begin, Index row_end,
                  const double* x, double* y) {
  if (csr.values == nullptr) {
    SpmvRows<P, true>(csr, row_begin, row_end, x, y);
  } else {
    SpmvRows<P, false>(csr, row_begin, row_end, x, y);
  }
}

template <typename P>
void RowSumsDispatch(const Csr& csr, Index row_begin, Index row_end,
                     double* out) {
  RowSumsRows<P>(csr, row_begin, row_end, out);
}

}  // namespace kernels
}  // namespace fgr

#endif  // FGR_MATRIX_KERNELS_KERNELS_SIMD_BODY_H_
